package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Microsecond)
	c.Advance(3 * time.Microsecond)
	if got := c.Now(); got != 8*time.Microsecond {
		t.Fatalf("Now = %v, want 8µs", got)
	}
}

func TestClockNegativeAdvanceIgnored(t *testing.T) {
	c := NewClock()
	c.Advance(time.Millisecond)
	c.Advance(-time.Second)
	if got := c.Now(); got != time.Millisecond {
		t.Fatalf("negative advance changed the clock: %v", got)
	}
}

func TestClockChargeN(t *testing.T) {
	c := NewClock()
	c.ChargeN(10, 100*time.Nanosecond)
	if got := c.Now(); got != time.Microsecond {
		t.Fatalf("ChargeN: %v, want 1µs", got)
	}
	c.ChargeN(-3, time.Second) // ignored
	c.ChargeN(3, -time.Second) // ignored
	if got := c.Now(); got != time.Microsecond {
		t.Fatalf("invalid ChargeN changed the clock: %v", got)
	}
}

func TestClockSince(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	mark := c.Now()
	c.Advance(250 * time.Millisecond)
	if got := c.Since(mark); got != 250*time.Millisecond {
		t.Fatalf("Since = %v", got)
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Advance(time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Now(); got != workers*per*time.Nanosecond {
		t.Fatalf("concurrent advance lost updates: %v", got)
	}
}

func TestDefaultCostsSanity(t *testing.T) {
	costs := DefaultCosts()
	// Every cost must be positive — a zero cost silently removes an
	// operation from the model.
	checks := map[string]time.Duration{
		"LockAcquire": costs.LockAcquire, "MapLookupEntry": costs.MapLookupEntry,
		"HashLookup": costs.HashLookup, "MapEntryAlloc": costs.MapEntryAlloc,
		"MapEntryFree": costs.MapEntryFree, "ObjectAlloc": costs.ObjectAlloc,
		"ObjectFree": costs.ObjectFree, "PagerAlloc": costs.PagerAlloc,
		"AnonAlloc": costs.AnonAlloc, "AnonFree": costs.AnonFree,
		"VnodeAlloc": costs.VnodeAlloc, "NameLookup": costs.NameLookup,
		"AmapAlloc": costs.AmapAlloc, "AmapPerSlot": costs.AmapPerSlot,
		"PageAlloc": costs.PageAlloc, "PageFree": costs.PageFree,
		"PageZero": costs.PageZero, "PageCopy": costs.PageCopy,
		"PageTouch": costs.PageTouch, "PmapEnter": costs.PmapEnter,
		"PmapRemove": costs.PmapRemove, "PmapProtect": costs.PmapProtect,
		"PmapExtract": costs.PmapExtract, "FaultTrap": costs.FaultTrap,
		"ChainSearch": costs.ChainSearch, "CollapseScan": costs.CollapseScan,
		"SwapSlotAlloc": costs.SwapSlotAlloc, "DiskSeek": costs.DiskSeek,
		"DiskOp": costs.DiskOp, "DiskPageIO": costs.DiskPageIO,
	}
	for name, v := range checks {
		if v <= 0 {
			t.Errorf("cost %s is %v, must be positive", name, v)
		}
	}
	// Relative sanity: disk dominates CPU, copy costs more than zero-fill,
	// a fault trap costs more than a lock.
	if costs.DiskSeek < 1000*costs.PageCopy {
		t.Errorf("disk seek should dominate page copy by orders of magnitude")
	}
	if costs.PageCopy <= costs.PageZero {
		t.Errorf("copying a page must cost more than zeroing one")
	}
	if costs.FaultTrap <= costs.LockAcquire {
		t.Errorf("fault trap must cost more than a lock acquire")
	}
}

func TestStatsBasics(t *testing.T) {
	s := NewStats()
	s.Inc("a")
	s.Add("a", 2)
	s.Add("b", -1)
	if s.Get("a") != 3 || s.Get("b") != -1 || s.Get("missing") != 0 {
		t.Fatalf("counter values wrong: a=%d b=%d", s.Get("a"), s.Get("b"))
	}
	snap := s.Snapshot()
	s.Inc("a")
	if snap["a"] != 3 {
		t.Fatalf("snapshot must be a copy")
	}
	s.Max("hw", 10)
	s.Max("hw", 5)
	if s.Get("hw") != 10 {
		t.Fatalf("Max high-water mark wrong: %d", s.Get("hw"))
	}
	s.Reset()
	if s.Get("a") != 0 {
		t.Fatalf("reset did not clear")
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats()
	s.Add("zzz", 1)
	s.Add("aaa", 2)
	out := s.String()
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	// Sorted: aaa must appear before zzz.
	if idxA, idxZ := indexOf(out, "aaa"), indexOf(out, "zzz"); idxA < 0 || idxZ < 0 || idxA > idxZ {
		t.Fatalf("counters not sorted in render:\n%s", out)
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestStatsConcurrent(t *testing.T) {
	s := NewStats()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Inc("n")
			}
		}()
	}
	wg.Wait()
	if got := s.Get("n"); got != 8000 {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	prop := func(nRaw uint8) bool {
		n := int(nRaw%100) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("missing elements: %v", p)
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(1)
	mustPanic(t, func() { r.Intn(0) })
	mustPanic(t, func() { r.Bool(1, 0) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
