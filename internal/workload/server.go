package workload

import (
	"fmt"
	"time"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// FileServer is the Figure 2 workload: a web server in the style of
// Apache that transmits files by memory mapping them and touching every
// byte. The experiment times how long one full pass over the working set
// takes once the set has been served before (so a perfect cache serves
// it from memory).
type FileServer struct {
	sys       vmapi.System
	proc      vmapi.Process
	FilePages int
	NumFiles  int
}

// NewFileServer creates the server process and its document root of
// NumFiles files, filePages pages each (the paper uses 64 KB files = 16
// pages).
func NewFileServer(sys vmapi.System, numFiles, filePages int) (*FileServer, error) {
	p, err := sys.NewProcess("httpd")
	if err != nil {
		return nil, err
	}
	fs := sys.Machine().FS
	for i := 0; i < numFiles; i++ {
		name := docName(i)
		if err := fs.Create(name, filePages*param.PageSize, func(idx int, buf []byte) {
			buf[0] = byte(i)
			buf[1] = byte(idx)
		}); err != nil {
			return nil, err
		}
	}
	return &FileServer{sys: sys, proc: p, FilePages: filePages, NumFiles: numFiles}, nil
}

func docName(i int) string { return fmt.Sprintf("/htdocs/f%04d", i) }

// ServeAll serves every file once — open, mmap shared, touch every page,
// unmap, close — and returns the simulated time the pass took.
func (s *FileServer) ServeAll() (time.Duration, error) {
	clock := s.sys.Machine().Clock
	t0 := clock.Now()
	size := param.VSize(s.FilePages) * param.PageSize
	for i := 0; i < s.NumFiles; i++ {
		vn, err := s.sys.Machine().FS.Open(docName(i))
		if err != nil {
			return 0, err
		}
		va, err := s.proc.Mmap(0, size, param.ProtRead, vmapi.MapShared, vn, 0)
		if err != nil {
			return 0, err
		}
		if err := s.proc.TouchRange(va, size, false); err != nil {
			return 0, err
		}
		if err := s.proc.Munmap(va, size); err != nil {
			return 0, err
		}
		vn.Unref()
	}
	return clock.Since(t0), nil
}

// Close exits the server process.
func (s *FileServer) Close() { s.proc.Exit() }
