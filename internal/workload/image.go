// Package workload builds the paper's workloads: program images with
// realistic segment layouts (Table 1), boot and X11 scenarios (Table 1),
// command page-fault traces (Table 2), the Apache-style file server
// (Figure 2), and the fork and allocation drivers behind Figures 5 and 6.
//
// Workloads are written once against vmapi and run unmodified on either
// VM system.
package workload

import (
	"errors"
	"fmt"

	"uvm/internal/param"
	"uvm/internal/vfs"
	"uvm/internal/vmapi"
)

// SegKind classifies a program segment.
type SegKind int

const (
	SegText  SegKind = iota // file-backed, read-execute, private
	SegData                 // file-backed, read-write, private (COW)
	SegBss                  // zero-fill, read-write
	SegStack                // zero-fill, read-write, fixed high address
)

// Segment is one mapping of a program image.
type Segment struct {
	Name  string
	Kind  SegKind
	Pages int
	// Addr fixes the placement; 0 means "next address in the current
	// placement region".
	Addr param.VAddr
}

// SysctlCall describes a sysctl(2) the program issues during startup and
// where its result buffer lives: segment index + page offset within it.
// Under BSD VM each call fragments the process map (§3.2).
type SysctlCall struct {
	Seg     int // index into the flattened segment list
	PageOff int // first page of the buffer within the segment
	Pages   int
}

// Image is a program: an executable layout plus startup behaviour.
type Image struct {
	Name     string
	Segments []Segment
	Sysctls  []SysctlCall
	// TouchPages makes exec touch the first page of each segment (what
	// the program counter and stack pointer do immediately), which is
	// what triggers i386 page-table allocation.
	TouchPages bool
}

// CatImage is a statically linked program in the mold of /bin/cat:
// text, data, bss, stack, signal trampoline and argument area — six map
// entries — plus the single sysctl a C startup performs, with its buffer
// in the last page of the stack.
func CatImage() *Image {
	return &Image{
		Name: "cat",
		Segments: []Segment{
			{Name: "text", Kind: SegText, Pages: 8},
			{Name: "data", Kind: SegData, Pages: 2},
			{Name: "bss", Kind: SegBss, Pages: 4},
			{Name: "stack", Kind: SegStack, Pages: 16, Addr: param.UserStackTop - 16*param.PageSize},
			{Name: "sigtramp", Kind: SegBss, Pages: 1, Addr: param.UserStackTop},
			{Name: "args", Kind: SegBss, Pages: 1, Addr: param.UserStackTop + param.PageSize},
		},
		// Buffer in the final page of the stack: wiring it clips the
		// stack entry once.
		Sysctls:    []SysctlCall{{Seg: 3, PageOff: 15, Pages: 1}},
		TouchPages: true,
	}
}

// OdImage is a dynamically linked program in the mold of /usr/bin/od: the
// six base entries plus ld.so and libc (three segments each, in two
// distinct 4 MB regions), with the extra sysctl traffic the runtime
// linker generates — one buffer mid-segment (two clips) and one at the
// stack end (one clip).
func OdImage() *Image {
	img := CatImage()
	img.Name = "od"
	img.Segments = append(img.Segments,
		Segment{Name: "ld.so.text", Kind: SegText, Pages: 4, Addr: param.SharedLibBase},
		Segment{Name: "ld.so.data", Kind: SegData, Pages: 1},
		Segment{Name: "ld.so.bss", Kind: SegBss, Pages: 1},
		Segment{Name: "libc.text", Kind: SegText, Pages: 12, Addr: param.SharedLibBase + 0x0040_0000},
		Segment{Name: "libc.data", Kind: SegData, Pages: 2},
		Segment{Name: "libc.bss", Kind: SegBss, Pages: 4},
	)
	// The runtime linker's sysctl lands mid-way through libc's bss
	// (segment 11), clipping that entry twice.
	img.Sysctls = append(img.Sysctls, SysctlCall{Seg: 11, PageOff: 1, Pages: 1})
	return img
}

// XClientImage models an X11-era client: dynamically linked against a
// larger library set (seven more segments across a third region).
func XClientImage(n int) *Image {
	img := OdImage()
	img.Name = fmt.Sprintf("x11-%d", n)
	img.Segments = append(img.Segments,
		Segment{Name: "libX11.text", Kind: SegText, Pages: 20, Addr: param.SharedLibBase + 0x0080_0000},
		Segment{Name: "libX11.data", Kind: SegData, Pages: 2},
		Segment{Name: "libX11.bss", Kind: SegBss, Pages: 2},
		Segment{Name: "libXt.text", Kind: SegText, Pages: 16, Addr: param.SharedLibBase + 0x00c0_0000},
		Segment{Name: "libXt.data", Kind: SegData, Pages: 2},
		Segment{Name: "libXt.bss", Kind: SegBss, Pages: 2},
		Segment{Name: "heap", Kind: SegBss, Pages: 32},
		Segment{Name: "shm", Kind: SegBss, Pages: 16},
	)
	return img
}

// Exec creates a process running the image: it maps every segment,
// touches the first page of each (instruction fetch / stack setup), and
// performs the image's startup sysctl calls.
func Exec(sys vmapi.System, img *Image) (vmapi.Process, error) {
	p, err := sys.NewProcess(img.Name)
	if err != nil {
		return nil, err
	}
	fs := sys.Machine().FS

	// One backing file per image holds text+data (Figure 1: "the text and
	// data areas of a file are different parts of a single object").
	filePages := 0
	for _, seg := range img.Segments {
		if seg.Kind == SegText || seg.Kind == SegData {
			filePages += seg.Pages
		}
	}
	fname := "/bin/" + img.Name
	if filePages > 0 {
		if err := fs.Create(fname, filePages*param.PageSize, func(idx int, buf []byte) {
			buf[0] = byte(idx)
		}); err != nil && !errors.Is(err, vfs.ErrExists) {
			return nil, err
		}
	}

	var (
		next    param.VAddr = param.UserTextBase
		fileOff param.PageOff
		placed  []param.VAddr
	)
	for _, seg := range img.Segments {
		addr := seg.Addr
		if addr == 0 {
			addr = next
		}
		size := param.VSize(seg.Pages) * param.PageSize
		var va param.VAddr
		switch seg.Kind {
		case SegText, SegData:
			vn, err := fs.Open(fname)
			if err != nil {
				return nil, err
			}
			prot := param.ProtRX
			if seg.Kind == SegData {
				prot = param.ProtRW
			}
			va, err = p.Mmap(addr, size, prot, vmapi.MapPrivate|vmapi.MapFixed, vn, fileOff)
			vn.Unref() // the mapping holds its own object reference
			if err != nil {
				return nil, fmt.Errorf("map %s/%s: %w", img.Name, seg.Name, err)
			}
			fileOff += param.PageOff(size)
		case SegBss, SegStack:
			var err error
			va, err = p.Mmap(addr, size, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate|vmapi.MapFixed, nil, 0)
			if err != nil {
				return nil, fmt.Errorf("map %s/%s: %w", img.Name, seg.Name, err)
			}
		}
		placed = append(placed, va)
		next = va + param.VAddr(size)
	}

	if img.TouchPages {
		for i, seg := range img.Segments {
			write := seg.Kind == SegBss || seg.Kind == SegStack || seg.Kind == SegData
			if err := p.Access(placed[i], write); err != nil {
				return nil, fmt.Errorf("touch %s/%s: %w", img.Name, seg.Name, err)
			}
		}
	}

	for _, sc := range img.Sysctls {
		va := placed[sc.Seg] + param.VAddr(sc.PageOff)*param.PageSize
		if err := p.Sysctl(va, param.VSize(sc.Pages)*param.PageSize); err != nil {
			return nil, fmt.Errorf("sysctl in %s: %w", img.Name, err)
		}
	}
	return p, nil
}
