package workload

import (
	"testing"

	"uvm/internal/bsdvm"
	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// bootSwept boots a system on a fresh test machine and registers the
// end-of-test Shutdown + Busy-page leak sweep.
func bootSwept(t *testing.T, boot vmapi.Booter) vmapi.System {
	t.Helper()
	sys := boot(machine())
	testutil.SweepOnCleanup(t, sys)
	return sys
}

func machine() *vmapi.Machine {
	return vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  8192,
		SwapPages: 16384,
		FSPages:   32768,
		MaxVnodes: 2000,
	})
}

func TestExecCatLayout(t *testing.T) {
	for _, boot := range []vmapi.Booter{bsdvm.Boot, uvm.Boot} {
		sys := bootSwept(t, boot)
		p, err := Exec(sys, CatImage())
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if p.MapEntryCount() < 6 {
			t.Errorf("%s: cat has %d entries, expected at least the 6 segments",
				sys.Name(), p.MapEntryCount())
		}
		// Text must actually contain the binary's bytes.
		b := make([]byte, 1)
		if err := p.ReadBytes(param.UserTextBase, b); err != nil {
			t.Fatalf("%s: read text: %v", sys.Name(), err)
		}
		if b[0] != 0 {
			t.Errorf("%s: text page 0 = %#x", sys.Name(), b[0])
		}
	}
}

// TestTable1Mechanics pins the per-process map entry arithmetic that
// drives Table 1: the counts must match the paper's cat and od rows
// exactly, since the five wiring paths are modelled mechanically.
func TestTable1Mechanics(t *testing.T) {
	cases := []struct {
		img      func() *Image
		bsd, uvm int
	}{
		{CatImage, 11, 6}, // paper Table 1: cat (static link)
		{OdImage, 21, 12}, // paper Table 1: od (dynamic link)
	}
	for _, c := range cases {
		img := c.img()
		bsys := bootSwept(t, bsdvm.Boot)
		base := bsys.TotalMapEntries()
		if _, err := Exec(bsys, img); err != nil {
			t.Fatal(err)
		}
		gotBSD := bsys.TotalMapEntries() - base

		usys := bootSwept(t, uvm.Boot)
		base = usys.TotalMapEntries()
		if _, err := Exec(usys, c.img()); err != nil {
			t.Fatal(err)
		}
		gotUVM := usys.TotalMapEntries() - base

		if gotBSD != c.bsd {
			t.Errorf("%s: BSD VM entries = %d, paper says %d", img.Name, gotBSD, c.bsd)
		}
		if gotUVM != c.uvm {
			t.Errorf("%s: UVM entries = %d, paper says %d", img.Name, gotUVM, c.uvm)
		}
	}
}

func TestBootScenariosRun(t *testing.T) {
	for _, boot := range []vmapi.Booter{bsdvm.Boot, uvm.Boot} {
		sys := bootSwept(t, boot)
		procs, err := MultiUserBoot(sys)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if len(procs) != 21 { // init, sh, 9 static, 10 dynamic daemons
			t.Errorf("%s: %d processes", sys.Name(), len(procs))
		}
		if sys.TotalMapEntries() <= 0 {
			t.Errorf("%s: no entries", sys.Name())
		}
	}
}

func TestBootEntryOrdering(t *testing.T) {
	// Whatever the absolute values, the Table 1 ordering must hold: UVM
	// uses strictly fewer entries than BSD VM at every scenario scale.
	scenarios := []func(vmapi.System) ([]vmapi.Process, error){
		SingleUserBoot, MultiUserBoot, StartX11,
	}
	for i, scen := range scenarios {
		bsys := bootSwept(t, bsdvm.Boot)
		if _, err := scen(bsys); err != nil {
			t.Fatal(err)
		}
		usys := bootSwept(t, uvm.Boot)
		if _, err := scen(usys); err != nil {
			t.Fatal(err)
		}
		b, u := bsys.TotalMapEntries(), usys.TotalMapEntries()
		if u >= b {
			t.Errorf("scenario %d: UVM %d entries >= BSD %d", i, u, b)
		}
	}
}

func TestCommandFaultCounts(t *testing.T) {
	// Table 2's headline: BSD VM faults once per page; UVM's lookahead
	// collapses the warm-file faults roughly 5x.
	cmd := Command{Name: "ls-test", WarmPages: 33, ColdPages: 26}
	bsys := bootSwept(t, bsdvm.Boot)
	bf, err := cmd.Run(bsys)
	if err != nil {
		t.Fatal(err)
	}
	usys := bootSwept(t, uvm.Boot)
	uf, err := cmd.Run(usys)
	if err != nil {
		t.Fatal(err)
	}
	if bf != 59 {
		t.Errorf("BSD faults = %d, want 59 (warm+cold)", bf)
	}
	if uf != 33 {
		t.Errorf("UVM faults = %d, want 33 (ceil(warm/5)+cold)", uf)
	}
}

func TestFileServer(t *testing.T) {
	sys := bootSwept(t, uvm.Boot)
	srv, err := NewFileServer(sys, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cold, err := srv.ServeAll()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := srv.ServeAll()
	if err != nil {
		t.Fatal(err)
	}
	if warm >= cold {
		t.Errorf("warm pass (%v) not faster than cold (%v)", warm, cold)
	}
}
