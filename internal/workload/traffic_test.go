package workload

import (
	"testing"

	"uvm/internal/bsdvm"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

// trafficTestConfig is a tiny shape that still exercises every op kind
// (file serve, anon mix, churn) and overcommits the tiny machine below.
func trafficTestConfig() TrafficConfig {
	return TrafficConfig{
		Tenants:        8,
		DatasetFiles:   64,
		FilePages:      4, // 256-page corpus vs 128-page RAM below
		ZipfS:          1.0,
		TouchPerOp:     4,
		AnonPages:      16, // 8 tenants × 16 = 128 anon pages alone
		AnonMixPercent: 25,
		ChurnEvery:     16,
		ChurnPages:     4,
		OpsPerWorker:   256,
		Seed:           1,
	}
}

// trafficTestMachine overcommits RAM with the config above. The vnode
// table must clear bsdvm's §4 object cache, which pins up to 100
// vnodes referenced (see TrafficConfig); 128 leaves room for the
// workers' concurrent opens.
func trafficTestMachine() *vmapi.Machine {
	return vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages:  128,
		SwapPages: 4096,
		FSPages:   1024,
		MaxVnodes: 128,
	})
}

func TestTrafficRunsOnBothSystems(t *testing.T) {
	cfg := trafficTestConfig()
	for _, boot := range []vmapi.Booter{uvm.Boot, bsdvm.Boot} {
		sys := boot(trafficTestMachine())
		testutil.SweepOnCleanup(t, sys)
		if err := CreateTrafficDataset(sys, cfg); err != nil {
			t.Fatalf("%s: dataset: %v", sys.Name(), err)
		}
		const workers = 2
		res, err := RunTraffic(sys, cfg, workers)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if want := int64(workers * cfg.OpsPerWorker); res.Ops != want {
			t.Errorf("%s: ops = %d, want %d", sys.Name(), res.Ops, want)
		}
		if res.Hist.Count() == 0 {
			t.Errorf("%s: histogram recorded nothing", sys.Name())
		}
		if res.Faults == 0 {
			t.Errorf("%s: no faults counted — the driver never touched memory?", sys.Name())
		}
		if res.Sim <= 0 {
			t.Errorf("%s: simulated time did not advance", sys.Name())
		}
		// The corpus is twice RAM and a quarter of ops dirty anon pages:
		// the run cannot fit without evicting.
		if got := sys.Machine().Stats.Get(sim.CtrPageOuts); got == 0 {
			t.Errorf("%s: no pageouts — the test machine is not overcommitted", sys.Name())
		}
	}
}

// TestTrafficDeterministicSim pins that two runs with the same seed and
// one worker cost the same simulated time and take the same fault
// count: the driver's randomness is all in the per-worker RNGs.
func TestTrafficDeterministicSim(t *testing.T) {
	cfg := trafficTestConfig()
	var sims [2]int64
	var faults [2]int64
	for i := range sims {
		sys := uvm.BootConfig(trafficTestMachine(), uvmDeterministicConfig())
		testutil.SweepOnCleanup(t, sys)
		if err := CreateTrafficDataset(sys, cfg); err != nil {
			t.Fatal(err)
		}
		res, err := RunTraffic(sys, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		sims[i] = int64(res.Sim)
		faults[i] = res.Faults
	}
	if sims[0] != sims[1] || faults[0] != faults[1] {
		t.Errorf("single-worker runs diverged: sim %d vs %d, faults %d vs %d",
			sims[0], sims[1], faults[0], faults[1])
	}
}

// uvmDeterministicConfig turns off the background machinery whose
// goroutine interleaving perturbs simulated time.
func uvmDeterministicConfig() uvm.Config {
	cfg := uvm.DefaultConfig()
	cfg.InlineReclaim = true
	cfg.AsyncPageout = false
	cfg.AsyncWriteback = false
	return cfg
}

func TestTrafficZipfSkew(t *testing.T) {
	// With s=1 over 64 files, rank 0 must be sampled far more often than
	// the median rank; with s=0 sampling is uniform. Also pins that the
	// sampler is deterministic for a fixed seed.
	const n, draws = 64, 20000
	counts := func(s float64, seed uint64) []int {
		z := newZipf(n, s)
		r := sim.NewRNG(seed)
		c := make([]int, n)
		for i := 0; i < draws; i++ {
			c[z.sample(r)]++
		}
		return c
	}
	skewed := counts(1.0, 7)
	if skewed[0] < 4*skewed[n/2] {
		t.Errorf("zipf(1.0): rank0 %d not ≫ median-rank %d", skewed[0], skewed[n/2])
	}
	uniform := counts(0, 7)
	want := draws / n
	if uniform[0] > 2*want || uniform[n-1] < want/2 {
		t.Errorf("zipf(0): not uniform: rank0 %d rankN %d want ~%d", uniform[0], uniform[n-1], want)
	}
	again := counts(1.0, 7)
	for i := range skewed {
		if skewed[i] != again[i] {
			t.Fatalf("zipf sampling not deterministic at rank %d: %d vs %d", i, skewed[i], again[i])
		}
	}
}

func TestTrafficConfigValidate(t *testing.T) {
	good := trafficTestConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*TrafficConfig){
		func(c *TrafficConfig) { c.Tenants = 0 },
		func(c *TrafficConfig) { c.DatasetFiles = -1 },
		func(c *TrafficConfig) { c.FilePages = 0 },
		func(c *TrafficConfig) { c.ZipfS = -0.5 },
		func(c *TrafficConfig) { c.TouchPerOp = 0 },
		func(c *TrafficConfig) { c.AnonPages = 0 },
		func(c *TrafficConfig) { c.AnonMixPercent = 101 },
		func(c *TrafficConfig) { c.ChurnEvery = -2 },
		func(c *TrafficConfig) { c.ChurnPages = 0 },
		func(c *TrafficConfig) { c.ChurnPages = c.AnonPages + 1 },
		func(c *TrafficConfig) { c.OpsPerWorker = 0 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted: %+v", i, c)
		}
	}
	// Worker-count bounds are enforced at run time.
	sys := uvm.Boot(trafficTestMachine())
	testutil.SweepOnCleanup(t, sys)
	if _, err := RunTraffic(sys, good, 0); err == nil {
		t.Error("workers=0 accepted")
	}
	if _, err := RunTraffic(sys, good, good.Tenants+1); err == nil {
		t.Error("workers > tenants accepted")
	}
}
