package workload

import (
	"fmt"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// BootKernel performs the boot-time wired allocations of the kernel's
// subsystems (buffer cache headers, mbuf arena, callout wheel, inode
// tables, ...). Under BSD VM each kmem_alloc consumes its own kernel map
// entry; under UVM adjacent allocations with identical attributes merge.
// The alternating protections model the real mix of executable stubs,
// read-only tables and data arenas, which is what keeps UVM's merged
// count above one.
func BootKernel(sys vmapi.System) error {
	// Twenty-five allocations in thirteen attribute runs: BSD VM ends up
	// with 25 new kernel entries, UVM with 13 (adjacent same-attribute
	// allocations merge, and the first run coalesces with the kernel bss).
	allocs := []struct {
		pages int
		prot  param.Prot
	}{
		// run 1 (merges into kbss): malloc arenas, buffer cache headers
		{16, param.ProtRW}, {8, param.ProtRW}, {32, param.ProtRW},
		// run 2: sysent / const tables
		{12, param.ProtRead}, {8, param.ProtRead},
		// run 3: mbufs, vnode + namecache
		{24, param.ProtRW}, {4, param.ProtRW}, {10, param.ProtRW},
		// run 4: trampolines
		{6, param.ProtRX},
		// run 5: proc + cred tables, tty buffers
		{20, param.ProtRW}, {16, param.ProtRW},
		// run 6: device + locale tables
		{8, param.ProtRead}, {11, param.ProtRead},
		// run 7: pipe buffers, select/poll state
		{12, param.ProtRW}, {6, param.ProtRW},
		// run 8: sigcode
		{4, param.ProtRX},
		// run 9: network stack state, audit buffers
		{18, param.ProtRW}, {7, param.ProtRW},
		// run 10: fs metadata templates
		{9, param.ProtRead},
		// run 11: shm segment table, softint stacks
		{13, param.ProtRW}, {15, param.ProtRW},
		// run 12: bpf filter stubs
		{5, param.ProtRX},
		// run 13: remaining data arenas
		{5, param.ProtRW}, {10, param.ProtRW}, {5, param.ProtRW},
	}
	for _, a := range allocs {
		if _, err := sys.KernelAlloc(a.pages, a.prot); err != nil {
			return err
		}
	}
	return nil
}

// SingleUserBoot boots the kernel subsystems and starts init and a shell —
// the Table 1 "single-user boot" row.
func SingleUserBoot(sys vmapi.System) ([]vmapi.Process, error) {
	if err := BootKernel(sys); err != nil {
		return nil, err
	}
	var procs []vmapi.Process
	for _, img := range []*Image{named(CatImage(), "init"), named(CatImage(), "sh")} {
		p, err := Exec(sys, img)
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
	}
	return procs, nil
}

// MultiUserBoot continues from a single-user boot to the Table 1
// "multi-user boot (no logins)" state: the usual daemon set, a mix of
// static and dynamic binaries, several with extra mappings (logs, shared
// memory, config files).
func MultiUserBoot(sys vmapi.System) ([]vmapi.Process, error) {
	procs, err := SingleUserBoot(sys)
	if err != nil {
		return nil, err
	}
	static := []string{"update", "mountd", "nfsd", "rpcbind", "dhclient",
		"getty1", "getty2", "getty3", "rarpd"}
	dynamic := []string{"syslogd", "cron", "inetd", "sendmail", "sshd", "ntpd",
		"lpd", "portmap", "named", "routed"}
	for _, name := range static {
		p, err := Exec(sys, named(CatImage(), name))
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
	}
	for i, name := range dynamic {
		p, err := Exec(sys, named(OdImage(), name))
		if err != nil {
			return nil, err
		}
		// Daemons map a few extra regions (log buffers, sockets, config).
		extra := 3 + i%3
		for j := 0; j < extra; j++ {
			if _, err := p.Mmap(0, 2*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0); err != nil {
				return nil, err
			}
		}
		procs = append(procs, p)
	}
	return procs, nil
}

// StartX11 starts an X server and eight clients — the Table 1 "starting
// X11 (9 processes)" row. Only the X processes' entries are counted by
// the experiment (the paper's row is per-workload, not cumulative).
func StartX11(sys vmapi.System) ([]vmapi.Process, error) {
	var procs []vmapi.Process
	for i := 0; i < 9; i++ {
		p, err := Exec(sys, XClientImage(i))
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
	}
	return procs, nil
}

func named(img *Image, name string) *Image {
	img.Name = name
	return img
}

// EntriesFor sums the map entries attributable to a set of processes.
func EntriesFor(procs []vmapi.Process) int {
	total := 0
	for _, p := range procs {
		total += p.MapEntryCount()
	}
	return total
}

// Command is a Table 2 workload: a command execution characterised by how
// many warm (resident, file-backed) pages and how many cold (zero-fill or
// uncached) pages it touches. The warm/cold split for each command is
// calibrated from the paper's BSD VM fault counts (which equal
// warm+cold, since BSD VM faults once per page); the UVM count is then
// *predicted* by the simulation, not assumed.
type Command struct {
	Name      string
	WarmPages int // file pages resident before the run (text, shared libs)
	ColdPages int // zero-fill pages (bss, stack, heap) faulted individually
}

// PaperCommands are the five commands of Table 2.
func PaperCommands() []Command {
	return []Command{
		{"ls /", 33, 26},
		{"finger chuck", 68, 60},
		{"cc hello.c", 620, 466},
		{"man csh", 63, 51},
		{"newaliases", 128, 101},
	}
}

// Run executes the command trace on sys and returns the number of page
// faults it took.
func (c Command) Run(sys vmapi.System) (int64, error) {
	fs := sys.Machine().FS
	fname := fmt.Sprintf("/cmd/%s.bin", c.Name)
	if err := fs.Create(fname, c.WarmPages*param.PageSize, func(idx int, buf []byte) {
		buf[0] = byte(idx)
	}); err != nil {
		return 0, err
	}

	// Warm the file cache: the pages are resident because the binary and
	// its libraries were read recently (by the shell, by exec headers, by
	// previous runs).
	warmVn, err := fs.Open(fname)
	if err != nil {
		return 0, err
	}
	warmer, err := sys.NewProcess(c.Name + "-warmer")
	if err != nil {
		return 0, err
	}
	wva, err := warmer.Mmap(0, param.VSize(c.WarmPages)*param.PageSize, param.ProtRead,
		vmapi.MapShared, warmVn, 0)
	if err != nil {
		return 0, err
	}
	if err := warmer.TouchRange(wva, param.VSize(c.WarmPages)*param.PageSize, false); err != nil {
		return 0, err
	}

	// The measured run.
	stats := sys.Machine().Stats
	before := stats.Get("vm.faults")
	p, err := sys.NewProcess(c.Name)
	if err != nil {
		return 0, err
	}
	vn, err := fs.Open(fname)
	if err != nil {
		return 0, err
	}
	tva, err := p.Mmap(0, param.VSize(c.WarmPages)*param.PageSize, param.ProtRX,
		vmapi.MapPrivate, vn, 0)
	if err != nil {
		return 0, err
	}
	if err := p.TouchRange(tva, param.VSize(c.WarmPages)*param.PageSize, false); err != nil {
		return 0, err
	}
	if c.ColdPages > 0 {
		ava, err := p.Mmap(0, param.VSize(c.ColdPages)*param.PageSize, param.ProtRW,
			vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			return 0, err
		}
		if err := p.TouchRange(ava, param.VSize(c.ColdPages)*param.PageSize, true); err != nil {
			return 0, err
		}
	}
	faults := stats.Get("vm.faults") - before

	p.Exit()
	vn.Unref()
	warmer.Exit()
	warmVn.Unref()
	return faults, nil
}
