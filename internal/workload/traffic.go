package workload

import (
	"fmt"
	"math"
	"sync"
	"time"

	"uvm/internal/histogram"
	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/vmapi"
)

// The traffic driver: the Figure 2 file server scaled into the
// ROADMAP's million-user workload. Thousands of simulated tenant
// processes serve requests against one machine — Zipf-distributed file
// popularity over a vnode dataset sized well past RAM (each request is
// the Figure 2 serve path: open, mmap shared, touch, munmap), a
// configurable anon-dirtying mixer so file and anonymous pressure
// compete for the pagedaemon, and continuous fork/exit churn in the
// mold of examples/forkfarm. Every page access is individually timed
// into a lock-free latency histogram shard (internal/histogram), so the
// run reports fault tail latency (p50/p99/p999) rather than just
// throughput — the tail is where lock contention and reclaim
// interference actually surface.

// TrafficConfig sizes one traffic run. All counts are positive;
// Validate names the first field that is not.
type TrafficConfig struct {
	// Tenants is the number of simulated tenant processes. Tenants are
	// dealt round-robin to the worker goroutines, so it must be at least
	// the worker count.
	Tenants int
	// DatasetFiles and FilePages shape the served corpus:
	// DatasetFiles files of FilePages pages each. Size the product well
	// past RAM or the whole dataset caches and reclaim never runs.
	// Sizing the machine's vnode table below DatasetFiles adds vnode
	// recycling to the mix — but keep MaxVnodes above bsdvm's object
	// cache limit (100, §4) plus the workers' concurrent opens, or the
	// baseline system legitimately runs out of vnodes: its cached
	// objects pin their vnodes referenced, which is the paper's point.
	DatasetFiles int
	FilePages    int
	// ZipfS is the Zipf popularity exponent over the dataset (file 0 the
	// most popular). 0 is uniform; ~1 is web-like skew.
	ZipfS float64
	// TouchPerOp is how many pages one request touches (clamped to the
	// file / anon region).
	TouchPerOp int
	// AnonPages is each tenant's private anonymous region, kept mapped
	// for the whole run (its resident pages are the anon pressure).
	AnonPages int
	// AnonMixPercent is the percentage of requests that dirty the
	// tenant's anon region instead of serving a file (the mixer that
	// makes file and anon pressure compete).
	AnonMixPercent int
	// ChurnEvery forks a short-lived child off the tenant every that
	// many requests per worker (0 disables churn). The child rewrites
	// ChurnPages of the tenant's anon region — the forkfarm COW storm —
	// and exits; the parent then rewrites them back.
	ChurnEvery int
	ChurnPages int
	// OpsPerWorker is each worker goroutine's request count — the run's
	// duration, in simulated operations.
	OpsPerWorker int
	// Seed feeds the per-worker deterministic RNGs.
	Seed uint64
}

// DefaultTrafficConfig is the standard heavy-traffic shape: a dataset
// twice the hdd97 machine's RAM, thousand-ish tenants, web-like skew,
// a fifth of requests dirtying anon memory, steady churn.
func DefaultTrafficConfig() TrafficConfig {
	return TrafficConfig{
		Tenants:        1024,
		DatasetFiles:   2048,
		FilePages:      8, // 2048 × 8 pages = 64 MB corpus vs 32 MB RAM
		ZipfS:          1.0,
		TouchPerOp:     4,
		AnonPages:      8,
		AnonMixPercent: 20,
		ChurnEvery:     64,
		ChurnPages:     4,
		OpsPerWorker:   1500,
		Seed:           1,
	}
}

// QuickTrafficConfig is the trimmed shape used by -quick runs, CI smoke
// and tests: same proportions, two orders of magnitude less work.
func QuickTrafficConfig() TrafficConfig {
	cfg := DefaultTrafficConfig()
	cfg.Tenants = 96
	cfg.DatasetFiles = 512 // 512 × 8 = 16 MB corpus vs 4 MB quick RAM
	cfg.OpsPerWorker = 600 // enough requests that reclaim actually runs
	return cfg
}

// DatasetPages returns the corpus size in pages.
func (c TrafficConfig) DatasetPages() int { return c.DatasetFiles * c.FilePages }

// Validate reports the first malformed field, naming it.
func (c TrafficConfig) Validate() error {
	switch {
	case c.Tenants <= 0:
		return fmt.Errorf("workload: TrafficConfig.Tenants must be positive (got %d)", c.Tenants)
	case c.DatasetFiles <= 0:
		return fmt.Errorf("workload: TrafficConfig.DatasetFiles must be positive (got %d)", c.DatasetFiles)
	case c.FilePages <= 0:
		return fmt.Errorf("workload: TrafficConfig.FilePages must be positive (got %d)", c.FilePages)
	case c.ZipfS < 0:
		return fmt.Errorf("workload: TrafficConfig.ZipfS must not be negative (got %g)", c.ZipfS)
	case c.TouchPerOp <= 0:
		return fmt.Errorf("workload: TrafficConfig.TouchPerOp must be positive (got %d)", c.TouchPerOp)
	case c.AnonPages <= 0:
		return fmt.Errorf("workload: TrafficConfig.AnonPages must be positive (got %d)", c.AnonPages)
	case c.AnonMixPercent < 0 || c.AnonMixPercent > 100:
		return fmt.Errorf("workload: TrafficConfig.AnonMixPercent must be 0..100 (got %d)", c.AnonMixPercent)
	case c.ChurnEvery < 0:
		return fmt.Errorf("workload: TrafficConfig.ChurnEvery must not be negative (got %d)", c.ChurnEvery)
	case c.ChurnEvery > 0 && c.ChurnPages <= 0:
		return fmt.Errorf("workload: TrafficConfig.ChurnPages must be positive with churn on (got %d)", c.ChurnPages)
	case c.ChurnPages > c.AnonPages:
		return fmt.Errorf("workload: TrafficConfig.ChurnPages %d exceeds AnonPages %d", c.ChurnPages, c.AnonPages)
	case c.OpsPerWorker <= 0:
		return fmt.Errorf("workload: TrafficConfig.OpsPerWorker must be positive (got %d)", c.OpsPerWorker)
	}
	return nil
}

// TrafficResult is one traffic run's measurement.
type TrafficResult struct {
	Workers int
	Ops     int64 // requests completed (file serves + anon ops + churn rounds)
	Faults  int64 // page faults taken during the run (counter delta)
	// Hist holds every timed page access of the run (per-worker shards
	// merged after the workers join); quantiles are wall-clock fault
	// latency.
	Hist *histogram.Hist
	// Interference counts faults/allocations that collided with reclaim
	// in flight — see ReclaimInterference.
	Interference int64
	Sim          time.Duration // simulated time the run took
	Wall         time.Duration // wall-clock time the run took
}

// ReclaimInterference reads the counters that record a collision with
// in-flight reclaim I/O: sleeps on an object page whose writeback is on
// the wire (uvm.objwb.waits — the fault path's waitObjPageIdle) plus
// allocations that blocked on the pagedaemon's round (uvm.pdaemon.blocked).
// The traffic driver reports the delta over its run as the
// reclaim-interference column. Both counters are UVM's; bsdvm reclaims
// inline under its big lock, so its interference shows up as latency
// instead of a count.
func ReclaimInterference(st *sim.Stats) int64 {
	return st.Get(sim.CtrObjWbWaits) + st.Get(sim.CtrPdBlocked)
}

// zipf samples file indices with Zipf popularity via a precomputed
// cumulative weight table and binary search. Shared read-only across
// workers; each worker supplies its own RNG.
type zipf struct {
	cum   []float64
	total float64
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{cum: make([]float64, n)}
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		z.cum[i] = acc
	}
	z.total = acc
	return z
}

// sample returns a file index in [0, n), most popular first.
func (z *zipf) sample(r *sim.RNG) int {
	u := float64(r.Uint64()>>11) / (1 << 53) * z.total
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// tenant is one simulated tenant process and its private anon region.
type tenant struct {
	proc   vmapi.Process
	anonVA param.VAddr
	churn  int // children forked so far (names)
}

// trafficFileName returns the corpus path of file i.
func trafficFileName(i int) string { return fmt.Sprintf("/traffic/f%05d", i) }

// CreateTrafficDataset builds the served corpus on sys's filesystem:
// cfg.DatasetFiles files of cfg.FilePages pages. Callers running
// several systems on separate machines call it once per machine.
func CreateTrafficDataset(sys vmapi.System, cfg TrafficConfig) error {
	fs := sys.Machine().FS
	for i := 0; i < cfg.DatasetFiles; i++ {
		err := fs.Create(trafficFileName(i), cfg.FilePages*param.PageSize,
			func(idx int, buf []byte) {
				buf[0] = byte(i)
				buf[1] = byte(idx)
			})
		if err != nil {
			return err
		}
	}
	return nil
}

// RunTraffic drives the multi-tenant traffic workload against sys with
// the given worker (goroutine) count: cfg.Tenants processes are created
// and dealt round-robin to the workers, each worker issues
// cfg.OpsPerWorker requests across its tenants, and every page access
// is timed into a per-worker histogram shard. The dataset must already
// exist (CreateTrafficDataset). Tenant processes are exited before
// returning; the caller owns system Shutdown and the Busy-page sweep.
func RunTraffic(sys vmapi.System, cfg TrafficConfig, workers int) (*TrafficResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 || workers > cfg.Tenants {
		return nil, fmt.Errorf("workload: traffic needs 1..Tenants workers (got %d of %d)", workers, cfg.Tenants)
	}
	mach := sys.Machine()

	tenants := make([]*tenant, cfg.Tenants)
	for i := range tenants {
		p, err := sys.NewProcess(fmt.Sprintf("tenant%04d", i))
		if err != nil {
			return nil, err
		}
		va, err := p.Mmap(0, param.VSize(cfg.AnonPages)*param.PageSize, param.ProtRW,
			vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			return nil, err
		}
		tenants[i] = &tenant{proc: p, anonVA: va}
	}
	defer func() {
		for _, tn := range tenants {
			if !tn.proc.Exited() {
				tn.proc.Exit()
			}
		}
	}()

	z := newZipf(cfg.DatasetFiles, cfg.ZipfS)
	st := mach.Stats
	faults0 := st.Get(sim.CtrFaults)
	intf0 := ReclaimInterference(st)
	sim0 := mach.Clock.Now()

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	shards := make([]*histogram.Hist, workers)
	opCounts := make([]int64, workers)
	wall0 := time.Now()
	for w := 0; w < workers; w++ {
		shards[w] = histogram.New()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Deal tenants round-robin so every worker drives a spread of
			// tenants rather than one contiguous block.
			var own []*tenant
			for i := w; i < len(tenants); i += workers {
				own = append(own, tenants[i])
			}
			rng := sim.NewRNG(cfg.Seed + uint64(w)*0x9e3779b97f4a7c15)
			h := shards[w]
			n, err := trafficWorker(sys, cfg, own, z, rng, h)
			opCounts[w] = n
			if err != nil {
				errOnce.Do(func() { firstErr = err })
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(wall0)
	if firstErr != nil {
		return nil, firstErr
	}

	res := &TrafficResult{
		Workers:      workers,
		Faults:       st.Get(sim.CtrFaults) - faults0,
		Hist:         histogram.New(),
		Interference: ReclaimInterference(st) - intf0,
		Sim:          mach.Clock.Now() - sim0,
		Wall:         wall,
	}
	for w := 0; w < workers; w++ {
		res.Ops += opCounts[w]
		res.Hist.Merge(shards[w])
	}
	return res, nil
}

// trafficWorker issues one worker's cfg.OpsPerWorker requests across
// its tenants, returning how many completed.
func trafficWorker(sys vmapi.System, cfg TrafficConfig, own []*tenant,
	z *zipf, rng *sim.RNG, h *histogram.Hist) (int64, error) {
	fs := sys.Machine().FS
	done := int64(0)
	for i := 0; i < cfg.OpsPerWorker; i++ {
		tn := own[i%len(own)]
		switch {
		case cfg.ChurnEvery > 0 && (i+1)%cfg.ChurnEvery == 0:
			// Fork/exit churn, the forkfarm pattern: the child rewrites
			// part of the parent's dirty anon region (COW storm both
			// ways), then exits; the parent faults its copies back.
			tn.churn++
			child, err := tn.proc.Fork(fmt.Sprintf("%s.c%d", tn.proc.Name(), tn.churn))
			if err != nil {
				return done, err
			}
			if err := touchTimed(child, tn.anonVA, cfg.ChurnPages, true, h); err != nil {
				child.Exit()
				return done, err
			}
			child.Exit()
			if err := touchTimed(tn.proc, tn.anonVA, cfg.ChurnPages, true, h); err != nil {
				return done, err
			}
		case rng.Intn(100) < cfg.AnonMixPercent:
			// Anon mixer: dirty a window of the tenant's private region.
			n := cfg.TouchPerOp
			if n > cfg.AnonPages {
				n = cfg.AnonPages
			}
			start := rng.Intn(cfg.AnonPages - n + 1)
			va := tn.anonVA + param.VAddr(start)*param.PageSize
			if err := touchTimed(tn.proc, va, n, true, h); err != nil {
				return done, err
			}
		default:
			// Serve a request: the Figure 2 path over a Zipf-picked file.
			f := z.sample(rng)
			vn, err := fs.Open(trafficFileName(f))
			if err != nil {
				return done, err
			}
			size := param.VSize(cfg.FilePages) * param.PageSize
			va, err := tn.proc.Mmap(0, size, param.ProtRead, vmapi.MapShared, vn, 0)
			if err != nil {
				vn.Unref()
				return done, err
			}
			n := cfg.TouchPerOp
			if n > cfg.FilePages {
				n = cfg.FilePages
			}
			start := rng.Intn(cfg.FilePages - n + 1)
			err = touchTimed(tn.proc, va+param.VAddr(start)*param.PageSize, n, false, h)
			if uerr := tn.proc.Munmap(va, size); err == nil {
				err = uerr
			}
			vn.Unref()
			if err != nil {
				return done, err
			}
		}
		done++
	}
	return done, nil
}

// touchTimed accesses one address per page across npages pages, timing
// each access individually into h. Unlike Process.TouchRange, the
// per-access timing is the point: a touch that takes a fault under
// reclaim pressure is exactly the latency the histogram exists to
// catch.
func touchTimed(p vmapi.Process, va param.VAddr, npages int, write bool, h *histogram.Hist) error {
	for i := 0; i < npages; i++ {
		t0 := time.Now()
		err := p.Access(va+param.VAddr(i)*param.PageSize, write)
		h.Record(time.Since(t0))
		if err != nil {
			return err
		}
	}
	return nil
}
