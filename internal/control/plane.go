package control

import (
	"sync"
	"time"

	"uvm/internal/sim"
)

// Control-plane counters. Published through the machine's sim.Stats so
// experiments and tests can watch the controllers work; none of them
// appear in paper reports, so enabling the counters alone never perturbs
// golden output.
const (
	// CtrSteps counts controller steps taken across the plane.
	CtrSteps = "control.steps"
	// CtrGrow / CtrShrink / CtrHold count decisions by kind; per-controller
	// splits are published as "control.<name>.<decision>".
	CtrGrow   = "control.grow"
	CtrShrink = "control.shrink"
	CtrHold   = "control.hold"
)

// Entry binds one controller into a Plane: Sample reads this epoch's
// observation from the system's counters and Apply pushes the (possibly
// moved) setting back into the knob it steers.
type Entry struct {
	Controller Controller
	// Sample returns the epoch's observation. Called with the plane lock
	// held; it must only read counters/atomics, never take owner locks.
	Sample func() Sample
	// Apply installs the controller's current value after a Grow or
	// Shrink. Called with the plane lock held; it must only store atomics
	// or call leaf-level setters (Swap.SetAIOWindow, FS.SetWriteWindow,
	// pagedaemon watermark stores) — never take owner locks.
	Apply func(v int)
}

// Plane drives a set of controllers on a fixed epoch of simulated time.
// Tick is designed to be called from hot completion paths: it is
// try-locked and epoch-gated, so all but one caller per epoch fall
// through at the cost of an atomic load and a failed TryLock.
type Plane struct {
	// Now reads the simulated clock. The plane never consults wall time.
	Now func() time.Duration
	// Epoch is the minimum simulated time between controller steps.
	Epoch time.Duration

	//uvm:lock control
	mu      sync.Mutex
	entries []Entry
	last    time.Duration
	armed   bool

	stats *sim.Stats
}

// NewPlane builds a plane stepping its controllers at most once per
// epoch of simulated time, publishing counters into stats (which may be
// nil for tests that only script decisions).
func NewPlane(now func() time.Duration, epoch time.Duration, stats *sim.Stats) *Plane {
	if epoch <= 0 {
		epoch = time.Millisecond
	}
	return &Plane{Now: now, Epoch: epoch, stats: stats}
}

// Register adds an entry to the plane. Not safe concurrently with Tick;
// register everything before the system starts ticking.
func (p *Plane) Register(e Entry) {
	p.entries = append(p.entries, e)
}

// Tick steps every controller if at least one epoch of simulated time
// has passed since the last step. Cheap when it isn't time yet; safe
// from any goroutine; callers must not hold owner locks (Sample/Apply
// are counter- and atomic-only by contract, so the plane introduces no
// lock-order edges).
func (p *Plane) Tick() {
	if !p.mu.TryLock() {
		return // someone else is stepping this epoch
	}
	defer p.mu.Unlock()
	now := p.Now()
	if p.armed && now-p.last < p.Epoch {
		return
	}
	if !p.armed {
		// First tick only arms the epoch clock; samplers need a full
		// epoch's worth of counter deltas before the first real step.
		p.armed = true
		p.last = now
		return
	}
	p.last = now
	for i := range p.entries {
		e := &p.entries[i]
		d := e.Controller.Step(e.Sample())
		if d != Hold && e.Apply != nil {
			e.Apply(e.Controller.Value())
		}
		p.count(e.Controller.Name(), d)
	}
}

// count publishes the step outcome.
func (p *Plane) count(name string, d Decision) {
	if p.stats == nil {
		return
	}
	p.stats.Inc(CtrSteps)
	switch d {
	case Grow:
		p.stats.Inc(CtrGrow)
	case Shrink:
		p.stats.Inc(CtrShrink)
	default:
		p.stats.Inc(CtrHold)
	}
	p.stats.Inc("control." + name + "." + d.String())
}
