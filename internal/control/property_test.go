package control

import (
	"math/rand"
	"testing"
)

// Property test: across arbitrary observation streams, the standard
// controller set only ever emits settings the mechanisms accept —
// windows at least 1, low below high watermark, cluster widths within
// the phys limits — as judged by Tuning.Validate. Each controller is
// also checked against an independent reference model of its movement
// rule (bounded AIMD / bounded banded walk), so a controller that stays
// in bounds but moves wrongly still fails.

// refModel independently tracks where a knob must be, given only the
// decisions the controller reported. It re-implements the movement
// arithmetic (add inc, halve, clamp) without sharing any code with knob.
type refModel struct {
	min, max, inc, value int
}

// apply moves the model by the reported decision and reports whether
// the decision was even legal from the previous state.
func (m *refModel) apply(t *testing.T, name string, d Decision) {
	t.Helper()
	switch d {
	case Grow:
		next := m.value + m.inc
		if next > m.max {
			next = m.max
		}
		if next == m.value {
			t.Fatalf("%s reported Grow while pinned at %d", name, m.value)
		}
		m.value = next
	case Shrink:
		next := m.value / 2
		if next < m.min {
			next = m.min
		}
		if next == m.value {
			t.Fatalf("%s reported Shrink while pinned at %d", name, m.value)
		}
		m.value = next
	}
}

// check compares the controller's value to the model's.
func (m *refModel) check(t *testing.T, c Controller) {
	t.Helper()
	if c.Value() != m.value {
		t.Fatalf("%s value = %d, reference model says %d", c.Name(), c.Value(), m.value)
	}
}

func TestStandardSetAlwaysValidatesUnderRandomStreams(t *testing.T) {
	const ramPages = 512
	start := Tuning{
		PageoutWindow:   4,
		WritebackWindow: 4,
		PageinCluster:   8,
		LookaheadBoost:  0,
		LowWater:        16,
		HighWater:       32,
	}

	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		set, err := NewStandardSet(start, ramPages)
		if err != nil {
			t.Fatal(err)
		}

		wmInc := start.LowWater / 2
		models := map[Controller]*refModel{
			set.Pageout:   {min: MinWindow, max: MaxWindow, inc: 1, value: start.PageoutWindow},
			set.Writeback: {min: MinWindow, max: MaxWindow, inc: 1, value: start.WritebackWindow},
			set.Pagein:    {min: 1, max: MaxPageinCluster, inc: 2, value: start.PageinCluster},
			set.Lookahead: {min: 1, max: MaxLookaheadBoost + 1, inc: 1, value: start.LookaheadBoost + 1},
			set.Watermark: {min: start.LowWater, max: ramPages / 8, inc: wmInc, value: start.LowWater},
		}
		controllers := []Controller{set.Pageout, set.Writeback, set.Pagein, set.Lookahead, set.Watermark}

		for step := 0; step < 2000; step++ {
			c := controllers[rng.Intn(len(controllers))]
			// Adversarial observation: wild metric scales, occasional
			// negatives and zero-weight epochs.
			s := Sample{
				Metric: (rng.Float64() - 0.1) * float64(int(1)<<uint(rng.Intn(20))),
				Weight: float64(rng.Intn(3)),
			}
			prev := c.Value()
			d := c.Step(s)
			if s.Weight <= 0 && (d != Hold || c.Value() != prev) {
				t.Fatalf("seed %d step %d: %s moved on a zero-weight epoch", seed, step, c.Name())
			}
			models[c].apply(t, c.Name(), d)
			models[c].check(t, c)

			if err := set.Tuning().Validate(ramPages); err != nil {
				t.Fatalf("seed %d step %d: emitted tuning does not validate: %v", seed, step, err)
			}
		}
	}
}

// NewStandardSet must refuse starting points the bounds can't keep safe:
// invalid vectors, and low watermarks whose derived 2× high mark could
// exceed ram/2.
func TestNewStandardSetRejectsBadStarts(t *testing.T) {
	ok := Tuning{PageoutWindow: 4, WritebackWindow: 4, PageinCluster: 8, LowWater: 16, HighWater: 32}
	if _, err := NewStandardSet(ok, 512); err != nil {
		t.Fatalf("valid start rejected: %v", err)
	}

	bad := ok
	bad.PageoutWindow = 0
	if _, err := NewStandardSet(bad, 512); err == nil {
		t.Fatal("PageoutWindow 0 accepted")
	}

	bad = ok
	bad.HighWater = bad.LowWater
	if _, err := NewStandardSet(bad, 512); err == nil {
		t.Fatal("HighWater == LowWater accepted")
	}

	// low = 300 validates on its own for ram 1024 (high 301 <= 512), but
	// it is above the watermark knob's operational ceiling of ram/8; the
	// constructor must reject it up front rather than build a knob whose
	// start exceeds its own maximum.
	bad = ok
	bad.LowWater, bad.HighWater = 300, 301
	if _, err := NewStandardSet(bad, 1024); err == nil {
		t.Fatal("LowWater above ram/8 accepted")
	}
}
