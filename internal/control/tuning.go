package control

import "fmt"

// Bounds for the settings the standard controller set may emit. They
// exist so a controller bug can never push the system somewhere the
// mechanisms don't support: windows below one would deadlock admission,
// clusters above the phys allocator's contiguity are wasted work, and
// watermarks above half of RAM would let the pagedaemon eat the machine.
const (
	// MinWindow / MaxWindow bound the async write windows (pageout to
	// swap, writeback to the filesystem).
	MinWindow = 1
	MaxWindow = 32
	// MaxPageinCluster bounds the pagein cluster width; matches the
	// system's MaxCluster pageout bound.
	MaxPageinCluster = 64
	// MaxLookaheadBoost bounds how many extra read-ahead pages the
	// lookahead controller may add on top of the advice baseline.
	MaxLookaheadBoost = 8
)

// Tuning is a complete setting vector emitted by the controller set —
// the control plane's whole interface to the knobs it steers.
type Tuning struct {
	// PageoutWindow / WritebackWindow are the in-flight bounds of the two
	// async write engines (swap pageout, object writeback).
	PageoutWindow   int
	WritebackWindow int
	// PageinCluster is the fault-time cluster width; LookaheadBoost is
	// added to the advice lookahead when it is non-zero.
	PageinCluster  int
	LookaheadBoost int
	// LowWater / HighWater are the pagedaemon watermarks, in pages.
	LowWater  int
	HighWater int
}

// Validate checks that every setting is one the underlying mechanisms
// accept, for a machine with ramPages of physical memory. This is the
// safety contract the property tests enforce over arbitrary observation
// streams: whatever the metrics do, an emitted Tuning always passes.
func (t Tuning) Validate(ramPages int) error {
	if t.PageoutWindow < MinWindow || t.PageoutWindow > MaxWindow {
		return fmt.Errorf("control: PageoutWindow %d outside [%d, %d]", t.PageoutWindow, MinWindow, MaxWindow)
	}
	if t.WritebackWindow < MinWindow || t.WritebackWindow > MaxWindow {
		return fmt.Errorf("control: WritebackWindow %d outside [%d, %d]", t.WritebackWindow, MinWindow, MaxWindow)
	}
	if t.PageinCluster < 1 || t.PageinCluster > MaxPageinCluster {
		return fmt.Errorf("control: PageinCluster %d outside [1, %d]", t.PageinCluster, MaxPageinCluster)
	}
	if t.LookaheadBoost < 0 || t.LookaheadBoost > MaxLookaheadBoost {
		return fmt.Errorf("control: LookaheadBoost %d outside [0, %d]", t.LookaheadBoost, MaxLookaheadBoost)
	}
	if t.LowWater < 1 {
		return fmt.Errorf("control: LowWater %d below 1", t.LowWater)
	}
	if t.HighWater <= t.LowWater {
		return fmt.Errorf("control: HighWater %d must exceed LowWater %d", t.HighWater, t.LowWater)
	}
	if ramPages > 0 && t.HighWater > ramPages/2 {
		return fmt.Errorf("control: HighWater %d above ram/2 (%d)", t.HighWater, ramPages/2)
	}
	return nil
}

// Set is the standard controller set for one machine: the five loops
// UVM's autotuner runs, built over a validated starting Tuning so their
// bounds always agree with Tuning.Validate.
type Set struct {
	// Pageout / Writeback deepen the async write windows by completion
	// latency (AIMD).
	Pageout   *AIMD
	Writeback *AIMD
	// Pagein / Lookahead widen clustering by observed payoff (banded).
	Pagein    *Band
	Lookahead *Band
	// Watermark raises the low watermark under allocation-stall pressure
	// and decays it after sustained calm; HighWater is derived as twice
	// the low mark, matching the pagedaemon's static configuration.
	Watermark *Band
}

// NewStandardSet builds the standard controllers starting from start,
// for a machine with ramPages of physical memory. start must validate;
// the returned set can only ever emit tunings that also validate, which
// the property tests check against a reference model.
func NewStandardSet(start Tuning, ramPages int) (*Set, error) {
	if err := start.Validate(ramPages); err != nil {
		return nil, err
	}
	// The set always derives HighWater as 2× the low mark, so the low
	// mark's ceiling must keep 2×ceiling under Validate's ram/2 bound.
	// The operational ceiling is tighter still — ram/8 — because RAM
	// counts wired kernel pages the daemon can never reclaim: a floor
	// the controller raised to a quarter of RAM can exceed what is
	// reclaimable at all, turning the daemon itself into the workload.
	wmMax := ramPages / 8
	if ramPages <= 0 {
		wmMax = start.LowWater * 8
	}
	if start.LowWater > wmMax {
		return nil, fmt.Errorf("control: starting LowWater %d above ram/8 (%d)", start.LowWater, wmMax)
	}
	wmInc := start.LowWater / 2
	if wmInc < 1 {
		wmInc = 1
	}
	return &Set{
		// Windows: grow while per-completion latency stays within 25% of
		// the best seen, halve when it inflates.
		Pageout:   NewAIMD("pageout", MinWindow, MaxWindow, start.PageoutWindow, 1, 0.25),
		Writeback: NewAIMD("writeback", MinWindow, MaxWindow, start.WritebackWindow, 1, 0.25),
		// Clustering: the metric is payoff in [0, 1] (fraction of the
		// speculative pages that were actually used). Grow while at least
		// half pay off; shrink after three epochs under a quarter.
		Pagein:    NewBand("pagein", 1, MaxPageinCluster, start.PageinCluster, 2, 0.5, 0.25, 3),
		Lookahead: NewBand("lookahead", 1, MaxLookaheadBoost+1, start.LookaheadBoost+1, 1, 0.5, 0.25, 3),
		// Watermarks: the metric is stall pressure (allocator blocks plus
		// normalised wait time per epoch). Any pressure grows the floor;
		// four calm epochs decay it.
		Watermark: NewBand("watermark", start.LowWater, wmMax, start.LowWater, wmInc, 0.5, 0.0, 4),
	}, nil
}

// Tuning returns the set's current setting vector. HighWater is derived
// as 2× the low mark; LookaheadBoost is the lookahead knob minus its
// 1-based floor (the knob runs on [1, MaxLookaheadBoost+1] because a
// knob's minimum is 1, while a boost of 0 must stay reachable).
func (s *Set) Tuning() Tuning {
	low := s.Watermark.Value()
	return Tuning{
		PageoutWindow:   s.Pageout.Value(),
		WritebackWindow: s.Writeback.Value(),
		PageinCluster:   s.Pagein.Value(),
		LookaheadBoost:  s.Lookahead.Value() - 1,
		LowWater:        low,
		HighWater:       2 * low,
	}
}
