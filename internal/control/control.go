// Package control is the self-tuning control plane for the async VM
// pipelines: a small feedback-controller framework (AIMD and banded
// hill-climb style) plus the standard controller set UVM wires to its
// knobs — pageout/writeback window depth, pagein-cluster and lookahead
// width, and the pagedaemon watermarks.
//
// Every knob PRs 2–5 introduced is a static constant, and the best
// setting for the 1997 disk is wrong for nvme and wrong again under
// bursty traffic. The controllers close the loop from the counters the
// system already emits: deepen a window while per-completion disk
// latency stays flat and back off when it inflates; widen clustering
// while the hit rates pay off and shrink when neighbours miss; raise
// the watermarks while allocators stall and decay them after sustained
// calm.
//
// Determinism: the framework is pure state-machine arithmetic — no
// wall-clock, no randomness, no goroutines. Controllers advance only
// when Step is called with an observation, and the Plane advances only
// when its caller ticks it with a simulated-clock timestamp, so a
// scripted observation trace always produces the same decision
// sequence (the step-response test harness depends on exactly this).
// Whether a live run is deterministic is the caller's affair: UVM only
// engages the plane behind MachineConfig.AutoTune, which is off for
// every paper experiment.
package control

// Decision is a controller's verdict for one epoch: what actually
// happened to its setting.
type Decision int8

// The three possible step outcomes. Grow and Shrink report a real value
// change; a controller already pinned at a bound reports Hold.
const (
	Shrink Decision = -1
	Hold   Decision = 0
	Grow   Decision = 1
)

// String names the decision for counters and test output.
func (d Decision) String() string {
	switch d {
	case Shrink:
		return "shrink"
	case Grow:
		return "grow"
	default:
		return "hold"
	}
}

// Sample is one epoch's observation: the metric the controller steers by
// and the weight of evidence behind it (completions, clusters, faults —
// whatever the sampler counted this epoch). Weight 0 means "no data";
// every controller holds rather than steering on silence.
type Sample struct {
	Metric float64
	Weight float64
}

// Controller is one knob's feedback loop: Step consumes an epoch's
// observation and moves the setting, and Value is the current setting.
type Controller interface {
	// Name identifies the controller in counters and reports.
	Name() string
	// Value returns the current setting.
	Value() int
	// Step advances one epoch and reports what happened to the setting.
	Step(s Sample) Decision
}

// mutInvertBackoff, when set, inverts every controller's backoff rule —
// it grows where it would shrink and shrinks where it would grow. Test
// hook only: the step-response suite flips it to prove its assertions
// catch a broken rule (mutation verification). Never set outside tests.
var mutInvertBackoff bool

// invertIfMutated applies the mutation hook to a tentative decision.
func invertIfMutated(d Decision) Decision {
	if mutInvertBackoff {
		switch d {
		case Grow:
			return Shrink
		case Shrink:
			return Grow
		}
	}
	return d
}

// knob is the bounded integer setting every controller steers, with the
// shared additive-increase / multiplicative-decrease movement rules.
type knob struct {
	name     string
	min, max int
	inc      int
	value    int
}

func newKnob(name string, min, max, start, inc int) knob {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	if inc < 1 {
		inc = 1
	}
	return knob{name: name, min: min, max: max, inc: inc, value: start}
}

// move applies the decided direction with clamping and reports what
// actually happened: a decision that cannot move a pinned value
// degrades to Hold, which is what lets a flat trace converge to a
// stable setting with no oscillation.
func (k *knob) move(d Decision) Decision {
	switch d {
	case Grow:
		nv := k.value + k.inc
		if nv > k.max {
			nv = k.max
		}
		if nv == k.value {
			return Hold
		}
		k.value = nv
		return Grow
	case Shrink:
		nv := k.value / 2
		if nv < k.min {
			nv = k.min
		}
		if nv == k.value {
			return Hold
		}
		k.value = nv
		return Shrink
	}
	return Hold
}

// AIMD steers a knob by a lower-is-better metric (per-completion disk
// latency): additive growth while the metric stays within Tolerance of
// the best level seen, multiplicative backoff — and a one-epoch cooldown
// before probing again — when it inflates. After a backoff the inflated
// level becomes the new baseline, so a disk that has genuinely slowed
// re-anchors instead of shrinking to the floor.
type AIMD struct {
	knob
	tolerance float64

	base     float64
	haveBase bool
	cool     int
}

// NewAIMD builds an AIMD controller over [min, max] starting at start,
// growing by inc per calm epoch and backing off (halving) when the
// metric exceeds the baseline by more than tolerance (relative, e.g.
// 0.25 = +25%).
func NewAIMD(name string, min, max, start, inc int, tolerance float64) *AIMD {
	return &AIMD{knob: newKnob(name, min, max, start, inc), tolerance: tolerance}
}

// Name implements Controller.
func (c *AIMD) Name() string { return c.name }

// Value implements Controller.
func (c *AIMD) Value() int { return c.value }

// Step implements Controller: anchor on the first observation, then
// grow while flat, back off (and re-anchor) on inflation.
func (c *AIMD) Step(s Sample) Decision {
	if s.Weight <= 0 {
		return Hold
	}
	if !c.haveBase {
		c.base, c.haveBase = s.Metric, true
		return Hold
	}
	var d Decision
	switch {
	case s.Metric > c.base*(1+c.tolerance):
		d = Shrink
	case c.cool > 0:
		c.cool--
		d = Hold
	default:
		d = Grow
	}
	if s.Metric < c.base {
		c.base = s.Metric
	}
	d = invertIfMutated(d)
	if d == Shrink {
		// The inflated level is the new normal; probe again only after a
		// calm epoch.
		c.base = s.Metric
		c.cool = 1
	}
	return c.move(d)
}

// Band steers a knob by a banded metric with hysteresis: grow while the
// metric is at or above GrowAt (the payoff — hit rate, stall pressure —
// justifies more), shrink (halve) only after ShrinkAfter consecutive
// epochs at or below ShrinkAt, and hold in the dead band between. The
// gap between the two thresholds is what prevents oscillation around a
// single cut-off.
type Band struct {
	knob
	growAt, shrinkAt float64
	shrinkAfter      int

	below int
}

// NewBand builds a banded controller over [min, max] starting at start,
// growing by inc while the metric >= growAt and halving after
// shrinkAfter consecutive epochs with the metric <= shrinkAt
// (shrinkAfter < 1 is treated as 1). growAt must exceed shrinkAt.
func NewBand(name string, min, max, start, inc int, growAt, shrinkAt float64, shrinkAfter int) *Band {
	if shrinkAfter < 1 {
		shrinkAfter = 1
	}
	return &Band{knob: newKnob(name, min, max, start, inc),
		growAt: growAt, shrinkAt: shrinkAt, shrinkAfter: shrinkAfter}
}

// Name implements Controller.
func (c *Band) Name() string { return c.name }

// Value implements Controller.
func (c *Band) Value() int { return c.value }

// Step implements Controller.
func (c *Band) Step(s Sample) Decision {
	if s.Weight <= 0 {
		return Hold
	}
	var d Decision
	switch {
	case s.Metric >= c.growAt:
		c.below = 0
		d = Grow
	case s.Metric <= c.shrinkAt:
		c.below++
		if c.below >= c.shrinkAfter {
			c.below = 0
			d = Shrink
		}
	default:
		c.below = 0
	}
	return c.move(invertIfMutated(d))
}
