package control

import (
	"testing"
	"time"

	"uvm/internal/sim"
)

// Step-response harness: feed each controller a scripted observation
// trace and assert the exact decision sequence. The framework is pure
// state-machine arithmetic, so these are byte-exact, not statistical.

// steps runs a trace through c and returns the decision sequence.
func steps(c Controller, trace []Sample) []Decision {
	out := make([]Decision, len(trace))
	for i, s := range trace {
		out[i] = c.Step(s)
	}
	return out
}

// flat builds n identical observations.
func flat(metric float64, n int) []Sample {
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{Metric: metric, Weight: 1}
	}
	return out
}

func wantSeq(t *testing.T, got, want []Decision) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("decision count = %d, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("decision[%d] = %v, want %v (full: %v vs %v)", i, got[i], want[i], got, want)
		}
	}
}

// An AIMD window controller on a flat latency trace must anchor, climb
// to its ceiling, and then hold forever — convergence with no
// oscillation.
func TestAIMDFlatTraceConverges(t *testing.T) {
	c := NewAIMD("w", 1, 8, 4, 1, 0.25)
	got := steps(c, flat(100, 10))
	want := []Decision{Hold, Grow, Grow, Grow, Grow, Hold, Hold, Hold, Hold, Hold}
	wantSeq(t, got, want)
	if c.Value() != 8 {
		t.Fatalf("converged value = %d, want 8", c.Value())
	}
}

// A latency ramp must trigger multiplicative backoff the epoch the
// metric leaves the tolerance band, re-anchor on the inflated level,
// cool for one epoch, then probe again.
func TestAIMDLatencyRampBacksOff(t *testing.T) {
	c := NewAIMD("w", 1, 32, 8, 1, 0.25)
	trace := []Sample{
		{Metric: 100, Weight: 1}, // anchor
		{Metric: 105, Weight: 1}, // within band: grow 8→9
		{Metric: 110, Weight: 1}, // within band: grow 9→10
		{Metric: 140, Weight: 1}, // +40%: backoff 10→5, base=140
		{Metric: 140, Weight: 1}, // cooldown: hold
		{Metric: 140, Weight: 1}, // calm at new base: probe 5→6
	}
	wantSeq(t, steps(c, trace), []Decision{Hold, Grow, Grow, Shrink, Hold, Grow})
	if c.Value() != 6 {
		t.Fatalf("value after ramp = %d, want 6", c.Value())
	}
}

// A weightless epoch (no completions observed) must never move the
// setting: the controller holds on silence.
func TestAIMDHoldsWithoutEvidence(t *testing.T) {
	c := NewAIMD("w", 1, 8, 4, 1, 0.25)
	trace := []Sample{
		{Metric: 100, Weight: 1},
		{Metric: 0, Weight: 0}, // idle epoch: metric value is garbage
		{Metric: 9999, Weight: 0},
		{Metric: 100, Weight: 1},
	}
	wantSeq(t, steps(c, trace), []Decision{Hold, Hold, Hold, Grow})
}

// An improving metric lowers the baseline, so a later return to the old
// level reads as inflation relative to the best seen.
func TestAIMDTracksImprovingBaseline(t *testing.T) {
	c := NewAIMD("w", 1, 32, 4, 1, 0.25)
	trace := []Sample{
		{Metric: 100, Weight: 1}, // anchor at 100
		{Metric: 60, Weight: 1},  // better: grow, base drops to 60
		{Metric: 100, Weight: 1}, // +66% over the new base: backoff
	}
	wantSeq(t, steps(c, trace), []Decision{Hold, Grow, Shrink})
}

// A banded controller on a hit-rate cliff: payoff collapses from rich to
// zero, and the width must halve only after the hysteresis count, then
// keep halving to the floor.
func TestBandHitRateCliff(t *testing.T) {
	c := NewBand("pagein", 1, 64, 8, 2, 0.5, 0.25, 3)
	trace := []Sample{
		{Metric: 0.9, Weight: 1}, // rich: 8→10
		{Metric: 0.9, Weight: 1}, // 10→12
		{Metric: 0.0, Weight: 1}, // cliff: below #1
		{Metric: 0.0, Weight: 1}, // below #2
		{Metric: 0.0, Weight: 1}, // below #3: 12→6
		{Metric: 0.0, Weight: 1}, // below #1 (counter reset on shrink)
		{Metric: 0.0, Weight: 1}, // below #2
		{Metric: 0.0, Weight: 1}, // below #3: 6→3
	}
	want := []Decision{Grow, Grow, Hold, Hold, Shrink, Hold, Hold, Shrink}
	wantSeq(t, steps(c, trace), want)
	if c.Value() != 3 {
		t.Fatalf("value after cliff = %d, want 3", c.Value())
	}
}

// The dead band between the two thresholds is a hard hold: a metric
// wobbling inside it never moves the setting and resets the shrink
// hysteresis.
func TestBandDeadBandHoldsAndResetsHysteresis(t *testing.T) {
	c := NewBand("pagein", 1, 64, 8, 2, 0.5, 0.25, 3)
	trace := []Sample{
		{Metric: 0.1, Weight: 1}, // below #1
		{Metric: 0.1, Weight: 1}, // below #2
		{Metric: 0.4, Weight: 1}, // dead band: resets the count
		{Metric: 0.1, Weight: 1}, // below #1 again
		{Metric: 0.1, Weight: 1}, // below #2
		{Metric: 0.1, Weight: 1}, // below #3: shrink
	}
	want := []Decision{Hold, Hold, Hold, Hold, Hold, Shrink}
	wantSeq(t, steps(c, trace), want)
}

// An allocation burst against the watermark controller: stall pressure
// raises the floor immediately, sustained calm decays it only after the
// hysteresis count — and a floor already at its minimum reports Hold,
// not a phantom shrink.
func TestBandAllocationBurstRaisesWatermark(t *testing.T) {
	c := NewBand("watermark", 16, 128, 16, 8, 0.5, 0.0, 4)
	burst := []Sample{
		{Metric: 3.0, Weight: 5}, // allocators blocked: 16→24
		{Metric: 1.0, Weight: 3}, // still stalling: 24→32
		{Metric: 0.0, Weight: 1}, // calm #1
		{Metric: 0.0, Weight: 1}, // calm #2
		{Metric: 0.0, Weight: 1}, // calm #3
		{Metric: 0.0, Weight: 1}, // calm #4: decay 32→16
		{Metric: 0.0, Weight: 1}, // calm #1 — already at the floor...
		{Metric: 0.0, Weight: 1},
		{Metric: 0.0, Weight: 1},
		{Metric: 0.0, Weight: 1}, // ...so the 4th calm epoch holds
	}
	want := []Decision{Grow, Grow, Hold, Hold, Hold, Shrink, Hold, Hold, Hold, Hold}
	wantSeq(t, steps(c, burst), want)
	if c.Value() != 16 {
		t.Fatalf("decayed floor = %d, want 16", c.Value())
	}
}

// Bounds are absorbing reported-as-Hold states, never violated.
func TestControllersRespectBounds(t *testing.T) {
	up := NewAIMD("w", 1, 4, 4, 1, 0.25)
	for _, d := range steps(up, flat(10, 5)) {
		if d == Grow {
			t.Fatal("grew past the ceiling")
		}
	}
	if up.Value() != 4 {
		t.Fatalf("value = %d, want pinned 4", up.Value())
	}

	down := NewBand("b", 2, 64, 2, 1, 0.9, 0.5, 1)
	for _, d := range steps(down, flat(0, 5)) {
		if d == Shrink {
			t.Fatal("shrank past the floor")
		}
	}
	if down.Value() != 2 {
		t.Fatalf("value = %d, want pinned 2", down.Value())
	}
}

// The plane is epoch-gated on the simulated clock and steps every
// registered controller exactly once per epoch, publishing counters.
func TestPlaneEpochGating(t *testing.T) {
	var now time.Duration
	stats := sim.NewStats()
	p := NewPlane(func() time.Duration { return now }, time.Millisecond, stats)

	var sampled, applied int
	c := NewAIMD("w", 1, 8, 2, 1, 0.25)
	p.Register(Entry{
		Controller: c,
		Sample: func() Sample {
			sampled++
			return Sample{Metric: 100, Weight: 1}
		},
		Apply: func(v int) { applied++ },
	})

	p.Tick() // arms the epoch clock, no step
	if sampled != 0 {
		t.Fatalf("sampled on arming tick: %d", sampled)
	}
	for i := 0; i < 10; i++ {
		p.Tick() // same instant: epoch not elapsed
	}
	if sampled != 0 {
		t.Fatalf("sampled before epoch elapsed: %d", sampled)
	}

	now += time.Millisecond
	p.Tick() // first real step: anchors the baseline (Hold, no Apply)
	now += time.Millisecond
	p.Tick() // second step: grows 2→3 and applies
	if sampled != 2 {
		t.Fatalf("samples = %d, want 2", sampled)
	}
	if applied != 1 {
		t.Fatalf("applies = %d, want 1 (anchor epoch must not apply)", applied)
	}
	if c.Value() != 3 {
		t.Fatalf("value = %d, want 3", c.Value())
	}
	if got := stats.Get(CtrSteps); got != 2 {
		t.Fatalf("%s = %d, want 2", CtrSteps, got)
	}
	if got := stats.Get("control.w.grow"); got != 1 {
		t.Fatalf("control.w.grow = %d, want 1", got)
	}
	if got := stats.Get(CtrHold); got != 1 {
		t.Fatalf("%s = %d, want 1", CtrHold, got)
	}
}

// Mutation verification: invert the backoff rule and the latency-ramp
// and cliff assertions above must fail. This proves the harness actually
// pins the control law, not just the trace lengths.
func TestMutationInvertedBackoffIsCaught(t *testing.T) {
	mutInvertBackoff = true
	defer func() { mutInvertBackoff = false }()

	// The ramp trace from TestAIMDLatencyRampBacksOff: under the mutation
	// the +40% epoch must NOT produce the Shrink the real law requires.
	a := NewAIMD("w", 1, 32, 8, 1, 0.25)
	got := steps(a, []Sample{
		{Metric: 100, Weight: 1},
		{Metric: 105, Weight: 1},
		{Metric: 110, Weight: 1},
		{Metric: 140, Weight: 1},
	})
	if got[3] == Shrink {
		t.Fatal("mutant still shrank on the latency ramp; the harness would miss an inverted backoff rule")
	}

	// The cliff trace from TestBandHitRateCliff: the mutant grows where
	// the real law halves.
	b := NewBand("pagein", 1, 64, 8, 2, 0.5, 0.25, 3)
	got = steps(b, flat(0, 3))
	if got[2] == Shrink {
		t.Fatal("mutant still shrank on the hit-rate cliff")
	}
	if b.Value() <= 8 {
		t.Fatalf("mutant value = %d, want growth above 8 proving the inversion took effect", b.Value())
	}
}
