package sysv

import (
	"errors"
	"testing"

	"uvm/internal/bsdvm"
	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
	"uvm/internal/vmapi/testutil"
)

func machines(t *testing.T) map[string]vmapi.System {
	t.Helper()
	cfg := vmapi.MachineConfig{RAMPages: 512, SwapPages: 2048, FSPages: 512, MaxVnodes: 16}
	ms := map[string]vmapi.System{
		"bsdvm": bsdvm.Boot(vmapi.NewMachine(cfg)),
		"uvm":   uvm.Boot(vmapi.NewMachine(cfg)),
	}
	for _, sys := range ms {
		testutil.SweepOnCleanup(t, sys)
	}
	return ms
}

func TestShmSharedBetweenProcesses(t *testing.T) {
	for name, sys := range machines(t) {
		name, sys := name, sys
		t.Run(name, func(t *testing.T) {
			r := NewRegistry(sys)
			id, err := r.Shmget(42, 3*param.PageSize, IPCCreat)
			if err != nil {
				t.Fatal(err)
			}
			p1, _ := sys.NewProcess("writer")
			p2, _ := sys.NewProcess("reader")
			va1, err := r.Shmat(p1, id, param.ProtRW)
			if err != nil {
				t.Fatal(err)
			}
			va2, err := r.Shmat(p2, id, param.ProtRW)
			if err != nil {
				t.Fatal(err)
			}
			if err := p1.WriteBytes(va1+param.PageSize, []byte("ipc!")); err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 4)
			if err := p2.ReadBytes(va2+param.PageSize, b); err != nil {
				t.Fatal(err)
			}
			if string(b) != "ipc!" {
				t.Fatalf("shm not shared: %q", b)
			}
			// Writes flow both ways.
			p2.WriteBytes(va2, []byte{0x11})
			p1.ReadBytes(va1, b[:1])
			if b[0] != 0x11 {
				t.Fatalf("reverse direction broken: %#x", b[0])
			}
		})
	}
}

func TestShmgetSemantics(t *testing.T) {
	for name, sys := range machines(t) {
		name, sys := name, sys
		t.Run(name, func(t *testing.T) {
			r := NewRegistry(sys)
			id1, err := r.Shmget(7, param.PageSize, IPCCreat)
			if err != nil {
				t.Fatal(err)
			}
			// Same key returns the same segment.
			id2, err := r.Shmget(7, param.PageSize, IPCCreat)
			if err != nil || id2 != id1 {
				t.Fatalf("re-get: id %d vs %d, err %v", id2, id1, err)
			}
			// IPC_EXCL fails on an existing key.
			if _, err := r.Shmget(7, param.PageSize, IPCCreat|IPCExcl); !errors.Is(err, ErrExists) {
				t.Fatalf("excl: %v", err)
			}
			// Over-sized re-get fails.
			if _, err := r.Shmget(7, 10*param.PageSize, IPCCreat); !errors.Is(err, ErrTooSmall) {
				t.Fatalf("oversize: %v", err)
			}
			// Missing key without IPC_CREAT fails.
			if _, err := r.Shmget(8, param.PageSize, 0); !errors.Is(err, ErrNoEnt) {
				t.Fatalf("missing: %v", err)
			}
			if _, err := r.Shmget(9, 0, IPCCreat); !errors.Is(err, vmapi.ErrInvalid) {
				t.Fatalf("zero size: %v", err)
			}
		})
	}
}

func TestShmRmidLifetime(t *testing.T) {
	for name, sys := range machines(t) {
		name, sys := name, sys
		t.Run(name, func(t *testing.T) {
			r := NewRegistry(sys)
			id, _ := r.Shmget(1, param.PageSize, IPCCreat)
			p, _ := sys.NewProcess("p")
			va, err := r.Shmat(p, id, param.ProtRW)
			if err != nil {
				t.Fatal(err)
			}
			p.WriteBytes(va, []byte{0xAB})

			// RMID with a live attachment: key freed, data still usable.
			if err := r.Shmrm(id); err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 1)
			if err := p.ReadBytes(va, b); err != nil || b[0] != 0xAB {
				t.Fatalf("data gone after RMID with live attach: %v %#x", err, b[0])
			}
			// New attachments are refused.
			if _, err := r.Shmat(p, id, param.ProtRW); !errors.Is(err, ErrRemoved) {
				t.Fatalf("attach after RMID: %v", err)
			}
			// The key can be reused for a fresh segment.
			if _, err := r.Shmget(1, param.PageSize, IPCCreat); err != nil {
				t.Fatalf("key not freed: %v", err)
			}
			// Last detach destroys the old segment.
			if err := r.Shmdt(p, va); err != nil {
				t.Fatal(err)
			}
			if err := p.Access(va, false); !errors.Is(err, vmapi.ErrFault) {
				t.Fatalf("detached segment still mapped: %v", err)
			}
		})
	}
}

func TestShmSurvivesPaging(t *testing.T) {
	// Segment data must round-trip through swap under memory pressure.
	cfg := vmapi.MachineConfig{RAMPages: 64, SwapPages: 2048, FSPages: 256, MaxVnodes: 8}
	for name, boot := range map[string]vmapi.Booter{"bsdvm": bsdvm.Boot, "uvm": uvm.Boot} {
		name, boot := name, boot
		t.Run(name, func(t *testing.T) {
			sys := boot(vmapi.NewMachine(cfg))
			testutil.SweepOnCleanup(t, sys)
			r := NewRegistry(sys)
			id, _ := r.Shmget(5, 16*param.PageSize, IPCCreat)
			p, _ := sys.NewProcess("p")
			va, _ := r.Shmat(p, id, param.ProtRW)
			for i := 0; i < 16; i++ {
				p.WriteBytes(va+param.VAddr(i)*param.PageSize, []byte{byte(0xC0 + i)})
			}
			// Pressure.
			hog, _ := sys.NewProcess("hog")
			hva, _ := hog.Mmap(0, 100*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err := hog.TouchRange(hva, 100*param.PageSize, true); err != nil {
				t.Fatal(err)
			}
			b := make([]byte, 1)
			for i := 0; i < 16; i++ {
				if err := p.ReadBytes(va+param.VAddr(i)*param.PageSize, b); err != nil {
					t.Fatalf("page %d: %v", i, err)
				}
				if b[0] != byte(0xC0+i) {
					t.Fatalf("shm page %d corrupted through swap: %#x", i, b[0])
				}
			}
		})
	}
}

func TestShmDetachUnknownAddress(t *testing.T) {
	for _, sys := range machines(t) {
		r := NewRegistry(sys)
		p, _ := sys.NewProcess("p")
		if err := r.Shmdt(p, 0x4000_0000); !errors.Is(err, ErrNoEnt) {
			t.Fatalf("detach of nothing: %v", err)
		}
	}
}
