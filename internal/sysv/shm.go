// Package sysv implements the System V shared memory API (shmget, shmat,
// shmdt, shmctl) on top of either VM system's segment primitive — one of
// the anonymous-memory consumers the paper lists in §5. The key registry,
// permissions and lifetime rules live here; the memory itself is the VM
// system's problem.
package sysv

import (
	"errors"
	"fmt"
	"sync"

	"uvm/internal/param"
	"uvm/internal/vmapi"
)

// Errors mirror the System V error conditions.
var (
	ErrExists   = errors.New("sysv: segment exists (IPC_EXCL)")
	ErrNoEnt    = errors.New("sysv: no such segment")
	ErrRemoved  = errors.New("sysv: segment marked for removal")
	ErrTooSmall = errors.New("sysv: size exceeds existing segment")
)

// Key identifies a segment across processes (ftok-style).
type Key int64

// ID is a segment identifier returned by Shmget.
type ID int

// GetFlags control Shmget.
type GetFlags uint8

const (
	// IPCCreat creates the segment if it does not exist.
	IPCCreat GetFlags = 1 << iota
	// IPCExcl makes creation fail if the segment exists.
	IPCExcl
)

type segment struct {
	id       ID
	key      Key
	seg      vmapi.ShmSegment
	attaches int
	removed  bool // IPC_RMID: destroy once the last attachment detaches
}

// Registry is the shm namespace of one simulated machine.
type Registry struct {
	sys vmapi.System

	//uvm:lock shmreg
	mu     sync.Mutex
	nextID ID
	byKey  map[Key]*segment
	byID   map[ID]*segment
	// attachments: which process ranges belong to which segment, so
	// Shmdt can find the segment by address.
	att map[vmapi.Process]map[param.VAddr]*segment
}

// NewRegistry creates the shm namespace for a VM system.
func NewRegistry(sys vmapi.System) *Registry {
	return &Registry{
		sys:   sys,
		byKey: make(map[Key]*segment),
		byID:  make(map[ID]*segment),
		att:   make(map[vmapi.Process]map[param.VAddr]*segment),
	}
}

// Shmget finds or creates the segment for key, sized to hold size bytes.
func (r *Registry) Shmget(key Key, size int, flags GetFlags) (ID, error) {
	if size <= 0 {
		return 0, vmapi.ErrInvalid
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok && !s.removed {
		if flags&IPCExcl != 0 {
			return 0, ErrExists
		}
		if param.Pages(param.VSize(size)) > s.seg.Pages() {
			return 0, ErrTooSmall
		}
		return s.id, nil
	}
	if flags&IPCCreat == 0 {
		return 0, ErrNoEnt
	}
	seg, err := r.sys.NewShmSegment(param.Pages(param.VSize(size)))
	if err != nil {
		return 0, err
	}
	r.nextID++
	s := &segment{id: r.nextID, key: key, seg: seg}
	r.byKey[key] = s
	r.byID[s.id] = s
	return s.id, nil
}

// Shmat attaches the segment to p and returns the address.
func (r *Registry) Shmat(p vmapi.Process, id ID, prot param.Prot) (param.VAddr, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	if !ok {
		return 0, ErrNoEnt
	}
	if s.removed {
		return 0, ErrRemoved
	}
	va, err := s.seg.Attach(p, prot)
	if err != nil {
		return 0, err
	}
	if r.att[p] == nil {
		r.att[p] = make(map[param.VAddr]*segment)
	}
	r.att[p][va] = s
	s.attaches++
	return va, nil
}

// Shmdt detaches the segment mapped at va in p.
func (r *Registry) Shmdt(p vmapi.Process, va param.VAddr) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.att[p][va]
	if !ok {
		return ErrNoEnt
	}
	if err := p.Munmap(va, param.VSize(s.seg.Pages())*param.PageSize); err != nil {
		return err
	}
	delete(r.att[p], va)
	s.attaches--
	if s.removed && s.attaches == 0 {
		r.destroyLocked(s)
	}
	return nil
}

// Shmrm marks the segment for removal (shmctl IPC_RMID): the key becomes
// free immediately; the memory lives until the last detach.
func (r *Registry) Shmrm(id ID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	if !ok {
		return ErrNoEnt
	}
	if s.removed {
		return nil
	}
	s.removed = true
	delete(r.byKey, s.key)
	if s.attaches == 0 {
		r.destroyLocked(s)
	}
	return nil
}

func (r *Registry) destroyLocked(s *segment) {
	s.seg.Release()
	delete(r.byID, s.id)
}

// Segments returns the number of live segments (debug/tests).
func (r *Registry) Segments() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

func (s *segment) String() string {
	return fmt.Sprintf("shm(id=%d key=%d pages=%d att=%d rm=%v)",
		s.id, s.key, s.seg.Pages(), s.attaches, s.removed)
}
