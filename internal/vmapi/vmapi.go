// Package vmapi defines the interface both virtual memory systems — the
// 4.4BSD/Mach baseline (internal/bsdvm) and UVM (internal/uvm) — present
// to processes, workloads and experiments. Having one API is what lets
// every experiment in the paper run unmodified against either system.
//
// The package also provides Machine, the bundle of simulated hardware and
// kernel substrate (RAM, MMU, disks, swap partition, filesystem, clock,
// cost table) that a VM system is booted on. Both systems boot on
// identical machines in every comparison.
package vmapi

import (
	"errors"
	"fmt"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/pmap"
	"uvm/internal/sim"
	"uvm/internal/swap"
	"uvm/internal/vfs"
)

// Errors shared by both VM systems.
var (
	// ErrFault is the simulation's SIGSEGV: an access with no mapping or
	// insufficient protection.
	ErrFault = errors.New("vm: segmentation fault")
	// ErrNoSpace reports address-space or resource exhaustion.
	ErrNoSpace = errors.New("vm: no space")
	// ErrInvalid reports a malformed request (unaligned, zero length,
	// out-of-range protection, ...).
	ErrInvalid = errors.New("vm: invalid argument")
	// ErrExited reports an operation on a process that has exited.
	ErrExited = errors.New("vm: process has exited")
	// ErrDeadlock reports that the system could not reclaim memory: every
	// page is wired or swap is exhausted (the paper's "swap memory leak
	// deadlock" surfaces as this error in the baseline system).
	ErrDeadlock = errors.New("vm: memory deadlock")
)

// MapFlags selects the kind of mapping established by Mmap.
type MapFlags uint8

const (
	// MapAnon requests zero-fill anonymous memory (no file).
	MapAnon MapFlags = 1 << iota
	// MapPrivate requests copy-on-write semantics: stores are private to
	// this mapping.
	MapPrivate
	// MapShared requests shared semantics: stores are visible through the
	// underlying object.
	MapShared
	// MapFixed places the mapping exactly at the requested address.
	MapFixed
)

// Valid reports whether the flag combination is well-formed.
func (f MapFlags) Valid() bool {
	priv, shared := f&MapPrivate != 0, f&MapShared != 0
	return priv != shared // exactly one sharing mode
}

// MachineConfig sizes a simulated machine.
type MachineConfig struct {
	RAMPages  int   // physical memory, in 4 KB pages
	SwapPages int64 // swap partition size, in slots
	FSPages   int64 // filesystem disk size, in blocks
	MaxVnodes int   // kernel vnode table size (desiredvnodes)

	// SwapAIOWindow bounds in-flight asynchronous cluster writes per
	// swap device (a property of the disk queue, not of the VM system
	// using it). 0 keeps swap.DefaultAIOWindow; uvm.Config.PageoutWindow
	// can still override it at boot.
	SwapAIOWindow int

	// AllocCaches enables the per-CPU free-page caches in phys: that
	// many magazines of free frames, refilled from and drained to the
	// global pool in batches, so concurrent faulting goroutines stop
	// serialising on the pool (phys/alloccache.go). 0 — the default —
	// keeps the exact single-pool allocation layout, whose operation
	// order is byte-deterministic on single-threaded runs; the paper
	// experiments depend on that.
	AllocCaches int
	// AllocBatch is the magazine refill/drain transfer size, in pages.
	// 0 selects the phys default. Only meaningful with AllocCaches > 0.
	AllocBatch int

	// Profile names the machine's cost profile (sim.Profiles). Empty
	// means sim.DefaultProfile — the paper's 1997 testbed — and is
	// byte-identical to the pre-profile behaviour.
	Profile string

	// AutoTune asks the booted VM system to run its feedback control
	// plane (internal/control): live resizing of the async write windows,
	// pagein clustering, lookahead and pagedaemon watermarks from
	// observed latency and hit rates, plus the periodic syncer. Default
	// off — every paper experiment runs with static tuning, and their
	// reports are byte-identical with this flag clear. Systems without a
	// control plane (bsdvm) ignore it.
	AutoTune bool

	// FSFaultPlan and SwapFaultPlan, when non-nil, are installed on the
	// filesystem and swap disks at boot (disk.FaultPlan). Plans are
	// per-device state and must not be shared between the two.
	FSFaultPlan   *disk.FaultPlan
	SwapFaultPlan *disk.FaultPlan
}

// Validate reports the first malformed field of a config, naming it.
// NewMachine calls it and panics on error; drivers that accept config
// from flags should call it themselves and print the message instead.
func (cfg MachineConfig) Validate() error {
	if cfg.RAMPages <= 0 {
		return fmt.Errorf("vmapi: MachineConfig.RAMPages must be positive (got %d)", cfg.RAMPages)
	}
	if cfg.SwapPages <= 0 {
		return fmt.Errorf("vmapi: MachineConfig.SwapPages must be positive (got %d)", cfg.SwapPages)
	}
	if cfg.FSPages <= 0 {
		return fmt.Errorf("vmapi: MachineConfig.FSPages must be positive (got %d)", cfg.FSPages)
	}
	if cfg.MaxVnodes < 1 {
		return fmt.Errorf("vmapi: MachineConfig.MaxVnodes must be at least 1 (got %d)", cfg.MaxVnodes)
	}
	if cfg.SwapAIOWindow < 0 {
		return fmt.Errorf("vmapi: MachineConfig.SwapAIOWindow must not be negative (got %d)", cfg.SwapAIOWindow)
	}
	if cfg.AllocCaches < 0 {
		return fmt.Errorf("vmapi: MachineConfig.AllocCaches must not be negative (got %d)", cfg.AllocCaches)
	}
	if cfg.AllocBatch < 0 {
		return fmt.Errorf("vmapi: MachineConfig.AllocBatch must not be negative (got %d)", cfg.AllocBatch)
	}
	if cfg.AllocBatch > 0 && cfg.AllocCaches == 0 {
		return fmt.Errorf("vmapi: MachineConfig.AllocBatch set (%d) without AllocCaches", cfg.AllocBatch)
	}
	if _, err := sim.CostsForProfile(cfg.Profile); err != nil {
		return fmt.Errorf("vmapi: MachineConfig.Profile: %w", err)
	}
	return nil
}

// DefaultConfig is a 32 MB Pentium-II class machine matching the paper's
// testbed (§6: "a 333MHz Pentium-II with thirty-two megabytes of RAM"),
// with a 128 MB swap partition and a 256 MB filesystem.
func DefaultConfig() MachineConfig {
	return MachineConfig{
		RAMPages:  32 << 20 >> param.PageShift,
		SwapPages: 128 << 20 >> param.PageShift,
		FSPages:   256 << 20 >> param.PageShift,
		MaxVnodes: 2000,
	}
}

// ProfileConfig returns the machine-size preset for a named profile: the
// paper's testbed for hdd97 (identical to DefaultConfig), a larger
// modern machine for nvme, and a small memory-rich box for ramdisk. The
// preset carries the profile name, so NewMachine picks up the matching
// cost table.
func ProfileConfig(profile string) (MachineConfig, error) {
	if _, err := sim.CostsForProfile(profile); err != nil {
		return MachineConfig{}, err
	}
	cfg := DefaultConfig()
	cfg.Profile = profile
	switch profile {
	case "nvme":
		cfg.RAMPages = 128 << 20 >> param.PageShift
		cfg.SwapPages = 256 << 20 >> param.PageShift
		cfg.FSPages = 512 << 20 >> param.PageShift
		cfg.MaxVnodes = 4000
	case "ramdisk":
		cfg.RAMPages = 64 << 20 >> param.PageShift
		cfg.SwapPages = 64 << 20 >> param.PageShift
		cfg.FSPages = 128 << 20 >> param.PageShift
	}
	return cfg, nil
}

// Machine is the simulated hardware + substrate a VM system boots on.
type Machine struct {
	Clock *sim.Clock
	Costs *sim.Costs
	Stats *sim.Stats
	Mem   *phys.Mem
	MMU   *pmap.MMU
	Swap  *swap.Swap
	FS    *vfs.FS

	FSDisk   *disk.Disk
	SwapDisk *disk.Disk

	// AutoTune records MachineConfig.AutoTune for the VM system booted on
	// this machine (the machine itself has no controllers).
	AutoTune bool
}

// NewMachine boots a machine per cfg, with the cost table named by
// cfg.Profile (the calibrated 1997 table when unset). The config must be
// valid; NewMachine panics with Validate's message otherwise — drivers
// taking sizes from user input should Validate first.
func NewMachine(cfg MachineConfig) *Machine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	clock := sim.NewClock()
	costs, err := sim.CostsForProfile(cfg.Profile)
	if err != nil {
		panic(err) // unreachable: Validate checked the profile
	}
	stats := sim.NewStats()
	fsDisk := disk.New(clock, costs, stats, cfg.FSPages)
	swDisk := disk.New(clock, costs, stats, cfg.SwapPages)
	if cfg.FSFaultPlan != nil {
		fsDisk.SetFaultPlan(cfg.FSFaultPlan)
	}
	if cfg.SwapFaultPlan != nil {
		swDisk.SetFaultPlan(cfg.SwapFaultPlan)
	}
	sw := swap.New(clock, costs, stats, swDisk)
	if cfg.SwapAIOWindow > 0 {
		sw.SetAIOWindow(cfg.SwapAIOWindow)
	}
	mem := phys.NewMem(clock, costs, stats, cfg.RAMPages)
	if cfg.AllocCaches > 0 {
		mem.SetAllocCaches(cfg.AllocCaches, cfg.AllocBatch)
	}
	return &Machine{
		Clock:    clock,
		Costs:    costs,
		Stats:    stats,
		Mem:      mem,
		MMU:      pmap.NewMMU(clock, costs, stats),
		Swap:     sw,
		FS:       vfs.NewFS(clock, costs, stats, fsDisk, cfg.MaxVnodes),
		FSDisk:   fsDisk,
		SwapDisk: swDisk,
		AutoTune: cfg.AutoTune,
	}
}

// System is a booted virtual memory system.
type System interface {
	// Name identifies the system ("bsdvm" or "uvm") in reports.
	Name() string
	// Machine returns the substrate the system was booted on.
	Machine() *Machine
	// NewProcess creates a process with an empty address space. The system
	// performs its per-process kernel allocations (user structure, kernel
	// stack) — one of the Table 1 behaviours.
	NewProcess(name string) (Process, error)
	// KernelAlloc simulates a boot-time kmem_alloc of wired kernel memory
	// (npages pages, with the given protection) for a kernel subsystem.
	// How many map entries this consumes is system-specific: BSD VM
	// allocates one entry per call, UVM coalesces adjacent kernel entries
	// with matching attributes.
	KernelAlloc(npages int, prot param.Prot) (param.VAddr, error)
	// KernelMapEntries returns the number of map entries currently
	// allocated in the kernel map.
	KernelMapEntries() int
	// TotalMapEntries returns the map entries allocated system-wide
	// (kernel map plus every live process map) — the Table 1 metric.
	TotalMapEntries() int
	// Shutdown stops any background kernel threads the system started
	// (UVM's pagedaemon) and waits for them to exit. The system remains
	// usable afterwards — reclaim degrades to running inline in the
	// allocating goroutine — so teardown ordering is forgiving.
	// Idempotent; a no-op for systems with no kernel threads.
	Shutdown()

	// NewShmSegment creates a System V style shared anonymous memory
	// segment of npages pages (§5: one of the uses of anonymous memory).
	// UVM backs it with an aobj; BSD VM with an anonymous vm_object. The
	// segment holds one reference until Release.
	NewShmSegment(npages int) (ShmSegment, error)
}

// ShmSegment is a shared anonymous memory segment that processes of the
// same system can attach.
type ShmSegment interface {
	// Pages returns the segment size.
	Pages() int
	// Attach maps the segment into p's address space with prot.
	Attach(p Process, prot param.Prot) (param.VAddr, error)
	// Release drops the creation reference; the memory is freed once the
	// last attachment is unmapped.
	Release()
}

// Process is one simulated process' view of its VM system.
type Process interface {
	Name() string

	// Mmap establishes a mapping of length bytes. With MapAnon, vn must be
	// nil and the mapping is zero-fill; otherwise vn names the file and
	// off the starting offset within it. Unless MapFixed, addr is a hint
	// (0 = kernel chooses). Returns the chosen address.
	Mmap(addr param.VAddr, length param.VSize, prot param.Prot,
		flags MapFlags, vn *vfs.Vnode, off param.PageOff) (param.VAddr, error)
	// Munmap removes all mappings in [addr, addr+length).
	Munmap(addr param.VAddr, length param.VSize) error
	// Mprotect changes the protection of [addr, addr+length).
	Mprotect(addr param.VAddr, length param.VSize, prot param.Prot) error
	// Minherit sets the fork-time inheritance of [addr, addr+length).
	Minherit(addr param.VAddr, length param.VSize, inh param.Inherit) error
	// Madvise sets the usage hint of [addr, addr+length).
	Madvise(addr param.VAddr, length param.VSize, adv param.Advice) error
	// Mlock wires [addr, addr+length) into physical memory; Munlock
	// unwires it. (The mlock system call: the one wiring path where even
	// UVM must record state in the map, §3.2.)
	Mlock(addr param.VAddr, length param.VSize) error
	Munlock(addr param.VAddr, length param.VSize) error
	// Msync writes modified pages of a shared file mapping back.
	Msync(addr param.VAddr, length param.VSize) error

	// Fork creates a child whose address space follows each mapping's
	// inheritance attribute. Exit tears the address space down.
	Fork(name string) (Process, error)
	// Vfork creates a child that *shares* the parent's address space (no
	// mapping copies, no write-protection) until it exits — the paper's
	// footnote-3 observation that vfork avoids fork's per-entry and
	// per-page costs when the child will immediately exec.
	Vfork(name string) (Process, error)
	Exit()
	Exited() bool

	// Access simulates one CPU access (load or store) at addr, taking a
	// page fault if the MMU lacks a valid translation. TouchRange touches
	// one address per page across the range.
	Access(addr param.VAddr, write bool) error
	TouchRange(addr param.VAddr, length param.VSize, write bool) error

	// ReadBytes and WriteBytes move data between the simulation and the
	// process' memory image, faulting as needed (the copyin/copyout path).
	ReadBytes(addr param.VAddr, buf []byte) error
	WriteBytes(addr param.VAddr, data []byte) error

	// Sysctl and Physio simulate the two kernel paths that temporarily
	// wire a user buffer (§3.2): the buffer at addr is wired, the
	// operation runs, and the buffer is unwired.
	Sysctl(addr param.VAddr, length param.VSize) error
	Physio(addr param.VAddr, length param.VSize) error

	// MapEntryCount returns the live map entries in this process' map.
	MapEntryCount() int
	// ResidentPages returns the number of resident pages mapped by the
	// process (its RSS).
	ResidentPages() int
	// Mincore reports, for each page of [addr, addr+length), whether it
	// is resident in this process' address space (the mincore system
	// call).
	Mincore(addr param.VAddr, length param.VSize) ([]bool, error)
}

// Booter creates a System on a machine; each VM package exports one so
// experiments can be written generically over the pair.
type Booter func(*Machine) System
