// Package testutil holds the leak-sweep helpers every test that boots a
// machine is expected to use: a booted system must be Shut down at the
// end of the test, and after shutdown no physical page may still be
// Busy — a Busy page at that point is a claim leaked by an error path.
// Registering the sweep with test cleanup (SweepOnCleanup) gives new
// tests the check for free.
package testutil

import (
	"testing"

	"uvm/internal/vmapi"
)

// ShutdownSweep shuts sys down and fails the test if any physical page
// is still Busy afterwards, naming the leaked frames. Call it directly
// at natural end-of-test points; prefer SweepOnCleanup when booting.
func ShutdownSweep(t testing.TB, sys vmapi.System) {
	t.Helper()
	sys.Shutdown()
	if busy := sys.Machine().Mem.BusyPages(); len(busy) != 0 {
		t.Errorf("%s: %d pages still Busy after Shutdown (leaked claims): first frame %p",
			sys.Name(), len(busy), busy[0])
	}
}

// SweepOnCleanup registers ShutdownSweep to run when the test (or
// subtest) finishes — the standard way to boot in tests:
//
//	sys := uvm.Boot(mach)
//	testutil.SweepOnCleanup(t, sys)
func SweepOnCleanup(t testing.TB, sys vmapi.System) {
	t.Helper()
	t.Cleanup(func() { ShutdownSweep(t, sys) })
}
