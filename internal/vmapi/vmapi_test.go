package vmapi

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"uvm/internal/disk"
	"uvm/internal/param"
	"uvm/internal/sim"
)

func TestMapFlagsValid(t *testing.T) {
	valid := []MapFlags{
		MapAnon | MapPrivate,
		MapAnon | MapShared,
		MapPrivate,
		MapShared,
		MapShared | MapFixed,
	}
	for _, f := range valid {
		if !f.Valid() {
			t.Errorf("flags %b should be valid", f)
		}
	}
	invalid := []MapFlags{
		0,
		MapAnon,
		MapPrivate | MapShared,
		MapAnon | MapPrivate | MapShared,
		MapFixed,
	}
	for _, f := range invalid {
		if f.Valid() {
			t.Errorf("flags %b should be invalid", f)
		}
	}
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.RAMPages << param.PageShift; got != 32<<20 {
		t.Errorf("RAM = %d bytes, paper testbed has 32 MB", got)
	}
	if cfg.SwapPages <= int64(cfg.RAMPages>>1) {
		t.Errorf("swap should comfortably exceed RAM")
	}
	if cfg.MaxVnodes <= 100 {
		t.Errorf("vnode table (%d) must exceed BSD VM's 100-object cache for Figure 2 to be meaningful", cfg.MaxVnodes)
	}
}

func TestNewMachine(t *testing.T) {
	m := NewMachine(MachineConfig{RAMPages: 64, SwapPages: 128, FSPages: 256, MaxVnodes: 10})
	if m.Mem.TotalPages() != 64 {
		t.Errorf("RAM pages = %d", m.Mem.TotalPages())
	}
	if m.Swap.Slots() != 128 {
		t.Errorf("swap slots = %d", m.Swap.Slots())
	}
	if m.FSDisk.Blocks() != 256 {
		t.Errorf("fs blocks = %d", m.FSDisk.Blocks())
	}
	if m.Clock == nil || m.Costs == nil || m.Stats == nil || m.MMU == nil || m.FS == nil {
		t.Error("incomplete machine")
	}
	if m.Clock.Now() != 0 {
		t.Errorf("machine boots at t=%v", m.Clock.Now())
	}
}

func TestValidateNamesTheBadField(t *testing.T) {
	good := MachineConfig{RAMPages: 64, SwapPages: 128, FSPages: 256, MaxVnodes: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		mutate func(*MachineConfig)
		want   string
	}{
		{func(c *MachineConfig) { c.RAMPages = 0 }, "RAMPages"},
		{func(c *MachineConfig) { c.RAMPages = -3 }, "RAMPages"},
		{func(c *MachineConfig) { c.SwapPages = 0 }, "SwapPages"},
		{func(c *MachineConfig) { c.FSPages = -1 }, "FSPages"},
		{func(c *MachineConfig) { c.MaxVnodes = 0 }, "MaxVnodes"},
		{func(c *MachineConfig) { c.SwapAIOWindow = -1 }, "SwapAIOWindow"},
		{func(c *MachineConfig) { c.Profile = "floppy" }, "Profile"},
	}
	for _, tc := range cases {
		cfg := good
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("config with bad %s accepted", tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error %q does not name field %s", err, tc.want)
		}
	}

	// The zero config — the panic-deep-in-disk.New case — must be caught
	// up front with a field name, not a disk panic.
	var zero MachineConfig
	if err := zero.Validate(); err == nil {
		t.Fatal("zero config accepted")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewMachine(zero) did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "RAMPages") {
			t.Fatalf("NewMachine panic %q does not name the field", r)
		}
	}()
	NewMachine(zero)
}

func TestProfileConfigPresets(t *testing.T) {
	def, err := ProfileConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if def != DefaultConfig() {
		t.Errorf("empty profile preset differs from DefaultConfig")
	}
	hdd, err := ProfileConfig(sim.DefaultProfile)
	if err != nil {
		t.Fatal(err)
	}
	hdd.Profile = ""
	if hdd != DefaultConfig() {
		t.Errorf("hdd97 sizes differ from the paper testbed")
	}
	for _, name := range sim.Profiles() {
		cfg, err := ProfileConfig(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s preset invalid: %v", name, err)
		}
		if cfg.Profile != name {
			t.Fatalf("%s preset carries profile %q", name, cfg.Profile)
		}
	}
	if _, err := ProfileConfig("floppy"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestProfileChangesCosts(t *testing.T) {
	cfg, err := ProfileConfig("ramdisk")
	if err != nil {
		t.Fatal(err)
	}
	m := NewMachine(cfg)
	if m.Costs.DiskSeek != 0 {
		t.Errorf("ramdisk machine has seek cost %v", m.Costs.DiskSeek)
	}
	def := NewMachine(DefaultConfig())
	if def.Costs.DiskSeek != sim.DefaultCosts().DiskSeek {
		t.Errorf("default machine costs changed: seek %v", def.Costs.DiskSeek)
	}
}

func TestFaultPlansInstalledAtBoot(t *testing.T) {
	cfg := MachineConfig{RAMPages: 64, SwapPages: 128, FSPages: 256, MaxVnodes: 10,
		SwapFaultPlan: disk.NewFaultPlan(disk.FaultRule{Kind: disk.FaultWriteError, Block: disk.BlockAny}),
		FSFaultPlan:   disk.NewFaultPlan(disk.FaultRule{Kind: disk.FaultReadError, Block: disk.BlockAny}),
	}
	m := NewMachine(cfg)
	buf := make([]byte, param.PageSize)
	if err := m.SwapDisk.WritePages(0, [][]byte{buf}); !errors.Is(err, disk.ErrInjected) {
		t.Fatalf("swap plan not installed: %v", err)
	}
	if err := m.FSDisk.ReadPages(0, [][]byte{buf}); !errors.Is(err, disk.ErrInjected) {
		t.Fatalf("fs plan not installed: %v", err)
	}
}
