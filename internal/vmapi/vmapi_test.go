package vmapi

import (
	"testing"

	"uvm/internal/param"
)

func TestMapFlagsValid(t *testing.T) {
	valid := []MapFlags{
		MapAnon | MapPrivate,
		MapAnon | MapShared,
		MapPrivate,
		MapShared,
		MapShared | MapFixed,
	}
	for _, f := range valid {
		if !f.Valid() {
			t.Errorf("flags %b should be valid", f)
		}
	}
	invalid := []MapFlags{
		0,
		MapAnon,
		MapPrivate | MapShared,
		MapAnon | MapPrivate | MapShared,
		MapFixed,
	}
	for _, f := range invalid {
		if f.Valid() {
			t.Errorf("flags %b should be invalid", f)
		}
	}
}

func TestDefaultConfigMatchesPaperTestbed(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.RAMPages << param.PageShift; got != 32<<20 {
		t.Errorf("RAM = %d bytes, paper testbed has 32 MB", got)
	}
	if cfg.SwapPages <= int64(cfg.RAMPages>>1) {
		t.Errorf("swap should comfortably exceed RAM")
	}
	if cfg.MaxVnodes <= 100 {
		t.Errorf("vnode table (%d) must exceed BSD VM's 100-object cache for Figure 2 to be meaningful", cfg.MaxVnodes)
	}
}

func TestNewMachine(t *testing.T) {
	m := NewMachine(MachineConfig{RAMPages: 64, SwapPages: 128, FSPages: 256, MaxVnodes: 10})
	if m.Mem.TotalPages() != 64 {
		t.Errorf("RAM pages = %d", m.Mem.TotalPages())
	}
	if m.Swap.Slots() != 128 {
		t.Errorf("swap slots = %d", m.Swap.Slots())
	}
	if m.FSDisk.Blocks() != 256 {
		t.Errorf("fs blocks = %d", m.FSDisk.Blocks())
	}
	if m.Clock == nil || m.Costs == nil || m.Stats == nil || m.MMU == nil || m.FS == nil {
		t.Error("incomplete machine")
	}
	if m.Clock.Now() != 0 {
		t.Errorf("machine boots at t=%v", m.Clock.Now())
	}
}
