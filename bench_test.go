// Package bench is the benchmark harness: one testing.B benchmark per
// table and figure in the paper, plus ablation benches for the design
// choices DESIGN.md calls out. Real wall-clock time measures the
// simulator; the *simulated* metrics the paper reports are attached to
// each benchmark via ReportMetric (sim-* units).
//
// Run with: go test -bench=. -benchmem .
package bench

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"uvm/internal/bsdvm"
	"uvm/internal/experiments"
	"uvm/internal/param"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

// --- Table 1: allocated map entries ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[2].BSD), "entries-bsd-singleuser")
			b.ReportMetric(float64(rows[2].UVM), "entries-uvm-singleuser")
		}
	}
}

// --- Table 2: page fault counts ---

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var bf, uf int64
			for _, r := range rows {
				bf += r.BSD
				uf += r.UVM
			}
			b.ReportMetric(float64(bf), "faults-bsd-total")
			b.ReportMetric(float64(uf), "faults-uvm-total")
		}
	}
}

// --- Table 3: map-fault-unmap time ---

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(200)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.BSD.Nanoseconds())/1e3, "sim-us-bsd-"+metricName(r.Case))
				b.ReportMetric(float64(r.UVM.Nanoseconds())/1e3, "sim-us-uvm-"+metricName(r.Case))
			}
		}
	}
}

func metricName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '/':
			out = append(out, '-')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// --- Figure 2: object cache effect ---

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure2([]int{50, 200})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			big := points[1]
			b.ReportMetric(big.BSD.Seconds(), "sim-s-bsd-200files")
			b.ReportMetric(big.UVM.Seconds(), "sim-s-uvm-200files")
		}
	}
}

// --- Figure 5: anonymous allocation time ---

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure5([]int{16, 44})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := points[1]
			b.ReportMetric(p.BSD.Seconds(), "sim-s-bsd-44MB")
			b.ReportMetric(p.UVM.Seconds(), "sim-s-uvm-44MB")
		}
	}
}

// --- Figure 6: fork+wait overhead ---

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure6([]int{8}, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			p := points[0]
			b.ReportMetric(float64(p.BSDTouched.Microseconds()), "sim-us-bsd-touched-8MB")
			b.ReportMetric(float64(p.UVMTouched.Microseconds()), "sim-us-uvm-touched-8MB")
		}
	}
}

// --- §7: data movement ---

func BenchmarkDataMovement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DataMovement([]int{1, 256})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rows[0].LoanSaving*100, "saving-pct-1page")
			b.ReportMetric(rows[1].LoanSaving*100, "saving-pct-256pages")
		}
	}
}

// --- §8: /etc/rc ---

func BenchmarkRC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bsd, uv, err := experiments.RC()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(100*(1-float64(uv)/float64(bsd)), "saving-pct")
		}
	}
}

// --- Parallel scaling (beyond the paper: the big-lock removal) ---

// BenchmarkParallelFault drives write faults from GOMAXPROCS goroutines,
// each in its own process over its own anonymous region — the workload
// the fine-grained locking in internal/uvm exists for. Compare across
// -cpu 1,2,4,8 to see wall-clock scaling; internal/bsdvm (one big lock)
// is the contrast baseline.
func BenchmarkParallelFault(b *testing.B) {
	for _, sysName := range []string{"bsdvm", "uvm"} {
		b.Run(sysName, func(b *testing.B) {
			mach := vmapi.NewMachine(vmapi.MachineConfig{
				RAMPages: 65536, SwapPages: 65536, FSPages: 1024, MaxVnodes: 16,
			})
			var sys vmapi.System
			if sysName == "uvm" {
				sys = uvm.Boot(mach)
			} else {
				sys = bsdvm.Boot(mach)
			}
			var procCtr atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				p, err := sys.NewProcess(fmt.Sprintf("bench%d", procCtr.Add(1)))
				if err != nil {
					b.Error(err)
					return
				}
				defer p.Exit()
				const regionPages = 64
				const length = regionPages * param.PageSize
				va, err := p.Mmap(0, length, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
				if err != nil {
					b.Error(err)
					return
				}
				pg := 0
				for pb.Next() {
					if err := p.Access(va+param.VAddr(pg)*param.PageSize, true); err != nil {
						b.Error(err)
						return
					}
					pg++
					if pg == regionPages {
						if err := p.Munmap(va, length); err != nil {
							b.Error(err)
							return
						}
						va, err = p.Mmap(0, length, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
						if err != nil {
							b.Error(err)
							return
						}
						pg = 0
					}
				}
			})
		})
	}
}

// BenchmarkParallelLoanout measures concurrent page loanout + return:
// each goroutine's process repeatedly loans its (resident) region to the
// kernel and returns it. UVM-only — loanout is a UVM mechanism (§7).
func BenchmarkParallelLoanout(b *testing.B) {
	mach := vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages: 32768, SwapPages: 32768, FSPages: 1024, MaxVnodes: 16,
	})
	sys := uvm.Boot(mach)
	var procCtr atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		pi, err := sys.NewProcess(fmt.Sprintf("loaner%d", procCtr.Add(1)))
		if err != nil {
			b.Error(err)
			return
		}
		p := pi.(*uvm.Process)
		defer p.Exit()
		const loanPages = 8
		va, err := p.Mmap(0, loanPages*param.PageSize, param.ProtRW,
			vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			b.Error(err)
			return
		}
		if err := p.TouchRange(va, loanPages*param.PageSize, true); err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			loan, err := p.Loanout(va, loanPages)
			if err != nil {
				b.Error(err)
				return
			}
			p.LoanReturn(loan)
		}
	})
}

// --- Ablations ---

func benchMachine() *vmapi.Machine {
	return vmapi.NewMachine(vmapi.MachineConfig{
		RAMPages: 8192, SwapPages: 32768, FSPages: 32768, MaxVnodes: 2000,
	})
}

// BenchmarkAblationTwoStepMapping isolates the §3.1 mapping-API change:
// establishing read-only mappings under both systems.
func BenchmarkAblationTwoStepMapping(b *testing.B) {
	run := func(sys vmapi.System) time.Duration {
		mach := sys.Machine()
		mach.FS.Create("/m.bin", param.PageSize, nil)
		vn, _ := mach.FS.Open("/m.bin")
		defer vn.Unref()
		p, _ := sys.NewProcess("mapper")
		// Warm the object.
		va, _ := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		p.Munmap(va, param.PageSize)
		t0 := mach.Clock.Now()
		const iters = 1000
		for i := 0; i < iters; i++ {
			va, err := p.Mmap(0, param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
			if err != nil {
				b.Fatal(err)
			}
			p.Munmap(va, param.PageSize)
		}
		return mach.Clock.Since(t0) / iters
	}
	for i := 0; i < b.N; i++ {
		bt := run(bsdvm.Boot(benchMachine()))
		ut := run(uvm.Boot(benchMachine()))
		if i == 0 {
			b.ReportMetric(float64(bt.Nanoseconds()), "sim-ns-bsd")
			b.ReportMetric(float64(ut.Nanoseconds()), "sim-ns-uvm")
		}
	}
}

// BenchmarkAblationUnmapLockHold compares how long the map lock is held
// across an unmap that triggers teardown work (§3.1 two-phase unmap).
func BenchmarkAblationUnmapLockHold(b *testing.B) {
	run := func(sys vmapi.System) float64 {
		mach := sys.Machine()
		p, _ := sys.NewProcess("unmapper")
		const pages = 64
		for i := 0; i < 20; i++ {
			va, err := p.Mmap(0, pages*param.PageSize, param.ProtRW,
				vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
			if err != nil {
				b.Fatal(err)
			}
			if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
				b.Fatal(err)
			}
			mach.Stats.Add(sys.Name()+".map.lockheld_ns", 0) // ensure key exists
			if err := p.Munmap(va, pages*param.PageSize); err != nil {
				b.Fatal(err)
			}
		}
		return float64(mach.Stats.Get(sys.Name() + ".map.lockheld_max_ns"))
	}
	for i := 0; i < b.N; i++ {
		bh := run(bsdvm.Boot(benchMachine()))
		uh := run(uvm.Boot(benchMachine()))
		if i == 0 {
			b.ReportMetric(bh, "sim-ns-maxhold-bsd")
			b.ReportMetric(uh, "sim-ns-maxhold-uvm")
		}
	}
}

// BenchmarkAblationLookahead measures Table 2's mechanism directly:
// faults over a warm file with UVM's lookahead on and off.
func BenchmarkAblationLookahead(b *testing.B) {
	run := func(disable bool) int64 {
		mach := benchMachine()
		cfg := uvm.DefaultConfig()
		cfg.DisableLookahead = disable
		sys := uvm.BootConfig(mach, cfg)
		mach.FS.Create("/warm.bin", 64*param.PageSize, nil)
		vn, _ := mach.FS.Open("/warm.bin")
		defer vn.Unref()
		warm, _ := sys.NewProcess("warm")
		wva, _ := warm.Mmap(0, 64*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		warm.TouchRange(wva, 64*param.PageSize, false)

		p, _ := sys.NewProcess("reader")
		va, _ := p.Mmap(0, 64*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		before := mach.Stats.Get(sim.CtrFaults)
		p.TouchRange(va, 64*param.PageSize, false)
		return mach.Stats.Get(sim.CtrFaults) - before
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		if i == 0 {
			b.ReportMetric(float64(with), "faults-lookahead")
			b.ReportMetric(float64(without), "faults-nolookahead")
		}
	}
}

// BenchmarkAblationClustering measures Figure 5's mechanism directly:
// pageout of 2x RAM with UVM clustering on and off.
func BenchmarkAblationClustering(b *testing.B) {
	run := func(disable bool) time.Duration {
		mach := vmapi.NewMachine(vmapi.MachineConfig{
			RAMPages: 2048, SwapPages: 16384, FSPages: 1024, MaxVnodes: 100,
		})
		cfg := uvm.DefaultConfig()
		cfg.DisableClustering = disable
		sys := uvm.BootConfig(mach, cfg)
		p, _ := sys.NewProcess("pig")
		const pages = 4096
		va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		t0 := mach.Clock.Now()
		if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
			b.Fatal(err)
		}
		return mach.Clock.Since(t0)
	}
	for i := 0; i < b.N; i++ {
		with := run(false)
		without := run(true)
		if i == 0 {
			b.ReportMetric(with.Seconds(), "sim-s-clustered")
			b.ReportMetric(without.Seconds(), "sim-s-unclustered")
		}
	}
}

// BenchmarkAblationObjCacheLimit sweeps BSD VM's object cache limit over
// the Figure 2 workload, showing the cliff follows the limit.
func BenchmarkAblationObjCacheLimit(b *testing.B) {
	run := func(limit int) time.Duration {
		mach := vmapi.NewMachine(vmapi.MachineConfig{
			RAMPages: 16384, SwapPages: 16384, FSPages: 32768, MaxVnodes: 2000,
		})
		cfg := bsdvm.DefaultConfig()
		cfg.ObjCacheLimit = limit
		sys := bsdvm.BootConfig(mach, cfg)
		srv, err := workload.NewFileServer(sys, 150, 8)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		srv.ServeAll()
		d, err := srv.ServeAll()
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	for i := 0; i < b.N; i++ {
		small := run(100)
		big := run(200)
		if i == 0 {
			b.ReportMetric(small.Seconds(), "sim-s-limit100")
			b.ReportMetric(big.Seconds(), "sim-s-limit200")
		}
	}
}

// BenchmarkAblationCollapse compares BSD VM fork/COW churn with the
// collapse operation on and off: without it, swap and resident pages
// leak (§5.3).
func BenchmarkAblationCollapse(b *testing.B) {
	run := func(disable bool) int {
		mach := vmapi.NewMachine(vmapi.MachineConfig{
			RAMPages: 4096, SwapPages: 16384, FSPages: 1024, MaxVnodes: 100,
		})
		cfg := bsdvm.DefaultConfig()
		cfg.DisableCollapse = disable
		sys := bsdvm.BootConfig(mach, cfg)
		p, _ := sys.NewProcess("churn")
		const pages = 32
		va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		p.TouchRange(va, pages*param.PageSize, true)
		for i := 0; i < 10; i++ {
			child, err := p.Fork("c")
			if err != nil {
				break
			}
			if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
				break
			}
			child.Exit()
		}
		return int(mach.Mem.TotalPages() - mach.Mem.FreePages())
	}
	for i := 0; i < b.N; i++ {
		withCollapse := run(false)
		withoutCollapse := run(true)
		if i == 0 {
			b.ReportMetric(float64(withCollapse), "pages-held-collapse")
			b.ReportMetric(float64(withoutCollapse), "pages-held-nocollapse")
		}
	}
}
