// Command forkfarm is the §5 comparison made visible. A parent with a dirty
// anonymous region forks workers in a loop; each worker rewrites the
// region and exits. Under BSD VM this grows shadow-object chains that the
// collapse operation must constantly repair (and which leak swap if it
// ever misses); under UVM the amap/anon reference counts make the whole
// collapse machinery unnecessary.
//
//	go run ./examples/forkfarm [-profile hdd97|nvme|ramdisk]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvm/internal/bsdvm"
	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

const (
	regionPages = 64
	workers     = 20
)

func main() {
	profile := flag.String("profile", "", "machine profile: hdd97 | nvme | ramdisk (default hdd97)")
	flag.Parse()
	cfg := vmapi.MachineConfig{
		RAMPages: 2048, SwapPages: 8192, FSPages: 1024, MaxVnodes: 100,
		Profile: *profile,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	for _, boot := range []vmapi.Booter{bsdvm.Boot, uvm.Boot} {
		mach := vmapi.NewMachine(cfg)
		sys := boot(mach)
		parent, err := sys.NewProcess("farmer")
		if err != nil {
			log.Fatal(err)
		}
		va, err := parent.Mmap(0, regionPages*param.PageSize, param.ProtRW,
			vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		if err := parent.TouchRange(va, regionPages*param.PageSize, true); err != nil {
			log.Fatal(err)
		}

		t0 := mach.Clock.Now()
		for i := 0; i < workers; i++ {
			w, err := parent.Fork(fmt.Sprintf("worker%d", i))
			if err != nil {
				log.Fatal(err)
			}
			// The worker rewrites the region (a full COW storm) and the
			// parent refreshes it afterwards.
			if err := w.TouchRange(va, regionPages*param.PageSize, true); err != nil {
				log.Fatal(err)
			}
			if err := parent.TouchRange(va, regionPages*param.PageSize, true); err != nil {
				log.Fatal(err)
			}
			w.Exit()
		}
		elapsed := mach.Clock.Since(t0)

		fmt.Printf("%s: %d workers over a %d KB region\n", sys.Name(), workers, regionPages*4)
		fmt.Printf("  simulated time:   %v\n", elapsed)
		fmt.Printf("  pages copied:     %d\n", mach.Stats.Get("vm.pages.copied"))
		if sys.Name() == "bsdvm" {
			fmt.Printf("  collapse scans:   %d (merged %d chains, freed %d redundant pages)\n",
				mach.Stats.Get("bsdvm.collapse.scan"),
				mach.Stats.Get("bsdvm.collapse.merged"),
				mach.Stats.Get("bsdvm.collapse.redundant_pages"))
		} else {
			fmt.Printf("  collapse scans:   0 (reference counts make collapse unnecessary)\n")
		}
		fmt.Printf("  swap in use:      %d slots\n\n", mach.Swap.SlotsInUse())
	}
}
