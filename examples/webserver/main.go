// Command webserver runs the paper's §4 motivating scenario. An Apache-style server
// transmits files by memory mapping them and touching every byte. When
// the working set exceeds BSD VM's 100-object cache, BSD VM falls to
// disk speed even though memory is free; UVM — whose file pages live and
// die with the vnode cache — keeps serving from memory (Figure 2).
//
//	go run ./examples/webserver [-profile hdd97|nvme|ramdisk]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvm/internal/bsdvm"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

func main() {
	profile := flag.String("profile", "", "machine profile: hdd97 | nvme | ramdisk (default hdd97)")
	flag.Parse()
	cfg := vmapi.MachineConfig{
		RAMPages:  96 << 20 >> 12, // plenty of RAM: the cache policy is the only limit
		SwapPages: 32768,
		FSPages:   65536,
		MaxVnodes: 2000,
		Profile:   *profile,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Apache-style server, 64 KB files, two passes over the working set")
	fmt.Printf("%8s %16s %16s\n", "files", "BSD VM pass", "UVM pass")
	for _, nfiles := range []int{50, 100, 150, 250} {
		var times [2]string
		for i, boot := range []vmapi.Booter{bsdvm.Boot, uvm.Boot} {
			sys := boot(vmapi.NewMachine(cfg))
			srv, err := workload.NewFileServer(sys, nfiles, 16)
			if err != nil {
				log.Fatal(err)
			}
			if _, err := srv.ServeAll(); err != nil { // prime
				log.Fatal(err)
			}
			d, err := srv.ServeAll() // measure
			if err != nil {
				log.Fatal(err)
			}
			times[i] = d.String()
			srv.Close()
		}
		fmt.Printf("%8d %16s %16s\n", nfiles, times[0], times[1])
	}
	fmt.Println("\nBSD VM's wall appears at its 100-object cache limit; UVM stays flat")
	fmt.Println("because unreferenced vnodes keep their pages until the vnode cache")
	fmt.Println("itself needs to recycle them.")
}
