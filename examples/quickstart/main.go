// Command quickstart boots a simulated machine, runs UVM on it, and exercises the
// basic API — file mapping, copy-on-write, fork isolation, and paging.
//
//	go run ./examples/quickstart [-profile hdd97|nvme|ramdisk]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

func main() {
	profile := flag.String("profile", "", "machine profile: hdd97 | nvme | ramdisk (default hdd97)")
	flag.Parse()

	// The paper's 32 MB testbed by default; -profile swaps the disk model
	// and machine-size preset.
	cfg, err := vmapi.ProfileConfig(*profile)
	if err != nil {
		log.Fatal(err)
	}
	mach := vmapi.NewMachine(cfg)
	sys := uvm.Boot(mach)

	// Create a file and a process.
	if err := mach.FS.Create("/etc/motd", 2*param.PageSize, func(idx int, buf []byte) {
		copy(buf, fmt.Sprintf("hello from page %d of motd\n", idx))
	}); err != nil {
		log.Fatal(err)
	}
	proc, err := sys.NewProcess("demo")
	if err != nil {
		log.Fatal(err)
	}

	// Map the file copy-on-write and read it through the mapping.
	vn, err := mach.FS.Open("/etc/motd")
	if err != nil {
		log.Fatal(err)
	}
	va, err := proc.Mmap(0, 2*param.PageSize, param.ProtRW, vmapi.MapPrivate, vn, 0)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 27)
	if err := proc.ReadBytes(va, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped file reads: %q\n", buf)

	// A private write stays out of the file.
	if err := proc.WriteBytes(va, []byte("REWRITTEN")); err != nil {
		log.Fatal(err)
	}
	onDisk := make([]byte, param.PageSize)
	vn.ReadPage(0, onDisk)
	fmt.Printf("after private write, file still starts: %q\n", onDisk[:5])

	// Fork: the child sees the parent's memory copy-on-write.
	child, err := proc.Fork("child")
	if err != nil {
		log.Fatal(err)
	}
	if err := child.ReadBytes(va, buf[:9]); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("child inherited:   %q\n", buf[:9])
	child.WriteBytes(va, []byte("CHILDDATA"))
	proc.ReadBytes(va, buf[:9])
	fmt.Printf("parent unaffected: %q\n", buf[:9])

	// Allocate more anonymous memory than RAM: the pagedaemon clusters
	// the pageout.
	big, err := proc.Mmap(0, 48<<20, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := proc.TouchRange(big, 48<<20, true); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntouched 48 MB on a %d MB machine in %v simulated time\n",
		int64(cfg.RAMPages)>>(20-param.PageShift), mach.Clock.Now())
	fmt.Printf("pageouts: %d pages in %d swap I/Os (clusters of ~%d)\n",
		mach.Stats.Get("vm.pageouts"), mach.Stats.Get("swap.ios"),
		mach.Stats.Get("vm.pageouts")/max64(1, mach.Stats.Get("swap.ios")))

	child.Exit()
	proc.Exit()
	vn.Unref()
	fmt.Printf("after exit: %d swap slots in use, %d anons live\n",
		mach.Swap.SlotsInUse(), mach.Stats.Get("uvm.anon.live"))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
