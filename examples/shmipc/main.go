// Command shmipc demonstrates System V shared memory (shmget/shmat/shmdt) — one of the §5
// consumers of anonymous memory — used for a producer/consumer ring
// buffer between two processes, on both VM systems.
//
//	go run ./examples/shmipc [-profile hdd97|nvme|ramdisk]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvm/internal/bsdvm"
	"uvm/internal/param"
	"uvm/internal/sysv"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

const (
	ringPages = 4
	messages  = 64
)

func main() {
	profile := flag.String("profile", "", "machine profile: hdd97 | nvme | ramdisk (default hdd97)")
	flag.Parse()
	cfg, err := vmapi.ProfileConfig(*profile)
	if err != nil {
		log.Fatal(err)
	}
	for _, boot := range []vmapi.Booter{bsdvm.Boot, uvm.Boot} {
		mach := vmapi.NewMachine(cfg)
		sys := boot(mach)
		shm := sysv.NewRegistry(sys)

		id, err := shm.Shmget(0x1234, ringPages*param.PageSize, sysv.IPCCreat|sysv.IPCExcl)
		if err != nil {
			log.Fatal(err)
		}
		producer, _ := sys.NewProcess("producer")
		consumer, _ := sys.NewProcess("consumer")
		pva, err := shm.Shmat(producer, id, param.ProtRW)
		if err != nil {
			log.Fatal(err)
		}
		cva, err := shm.Shmat(consumer, id, param.ProtRW)
		if err != nil {
			log.Fatal(err)
		}

		// A trivial ring: slot i at offset i*64; producer writes, consumer
		// reads and verifies. (The simulation is synchronous, so no
		// real synchronisation is needed — the point is the shared pages.)
		delivered := 0
		for i := 0; i < messages; i++ {
			off := param.VAddr((i * 64) % (ringPages * param.PageSize))
			msg := []byte(fmt.Sprintf("msg-%02d", i))
			if err := producer.WriteBytes(pva+off, msg); err != nil {
				log.Fatal(err)
			}
			got := make([]byte, len(msg))
			if err := consumer.ReadBytes(cva+off, got); err != nil {
				log.Fatal(err)
			}
			if string(got) == string(msg) {
				delivered++
			}
		}

		fmt.Printf("%s: delivered %d/%d messages through a %d KB SysV shm ring\n",
			sys.Name(), delivered, messages, ringPages*4)
		fmt.Printf("  pages copied: %d (shared mapping: data never copied)\n",
			mach.Stats.Get("vm.pages.copied"))

		// Cleanup: RMID + detach destroys the segment.
		if err := shm.Shmrm(id); err != nil {
			log.Fatal(err)
		}
		shm.Shmdt(producer, pva)
		shm.Shmdt(consumer, cva)
		fmt.Printf("  segments remaining after RMID+detach: %d\n\n", shm.Segments())
	}
}
