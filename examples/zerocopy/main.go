// Command zerocopy exercises the three §7 data movement mechanisms, used together as an
// IPC pipeline. A producer builds a message in its address space and
// moves it to a consumer three ways: classic double copy, page loanout +
// page transfer (zero copy, COW preserved), and map entry passing.
//
//	go run ./examples/zerocopy [-profile hdd97|nvme|ramdisk]
package main

import (
	"flag"
	"fmt"
	"log"

	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

const msgPages = 64 // 256 KB message

func main() {
	profile := flag.String("profile", "", "machine profile: hdd97 | nvme | ramdisk (default hdd97)")
	flag.Parse()
	cfg, err := vmapi.ProfileConfig(*profile)
	if err != nil {
		log.Fatal(err)
	}
	mach := vmapi.NewMachine(cfg)
	sys := uvm.BootConfig(mach, uvm.DefaultConfig())

	producer := mustProc(sys, "producer")
	va, err := producer.Mmap(0, msgPages*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	msg := []byte("a large message built in the producer's address space")
	if err := producer.WriteBytes(va, msg); err != nil {
		log.Fatal(err)
	}
	if err := producer.TouchRange(va, msgPages*param.PageSize, true); err != nil {
		log.Fatal(err)
	}

	// --- 1. classic pipe: copy out of producer, copy into consumer.
	consumer1 := mustProc(sys, "consumer-copy")
	t0 := mach.Clock.Now()
	buf := make([]byte, msgPages*param.PageSize)
	if err := producer.ReadBytes(va, buf); err != nil {
		log.Fatal(err)
	}
	dst, _ := consumer1.Mmap(0, msgPages*param.PageSize, param.ProtRW,
		vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
	if err := consumer1.WriteBytes(dst, buf); err != nil {
		log.Fatal(err)
	}
	copyTime := mach.Clock.Since(t0)

	// --- 2. loanout + transfer: no bytes move.
	consumer2 := mustProc(sys, "consumer-loan")
	t1 := mach.Clock.Now()
	loaned, err := producer.Loanout(va, msgPages)
	if err != nil {
		log.Fatal(err)
	}
	rva, err := consumer2.Transfer(loaned, param.ProtRW)
	if err != nil {
		log.Fatal(err)
	}
	loanTime := mach.Clock.Since(t1)
	check := make([]byte, len(msg))
	consumer2.ReadBytes(rva, check)
	fmt.Printf("loan+transfer delivered: %q\n", check)

	// The consumer can write its copy without disturbing the producer.
	consumer2.WriteBytes(rva, []byte("CONSUMER-PRIVATE"))
	producer.ReadBytes(va, check)
	fmt.Printf("producer still sees:     %q\n\n", check)

	// --- 3. map entry passing: move the mapping itself.
	consumer3 := mustProc(sys, "consumer-mep")
	t2 := mach.Clock.Now()
	tok, err := producer.Export(va, msgPages*param.PageSize, uvm.ExportShare)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := consumer3.Import(tok); err != nil {
		log.Fatal(err)
	}
	mepTime := mach.Clock.Since(t2)

	fmt.Printf("moving a %d KB message (simulated time):\n", msgPages*4)
	fmt.Printf("  double copy:      %10v\n", copyTime)
	fmt.Printf("  loanout+transfer: %10v   (%.0f%% less)\n", loanTime,
		100*(1-float64(loanTime)/float64(copyTime)))
	fmt.Printf("  map entry pass:   %10v   (%.0f%% less)\n", mepTime,
		100*(1-float64(mepTime)/float64(copyTime)))
	fmt.Printf("\npages copied during the whole run: %d (copy path) — the VM paths moved none\n",
		mach.Stats.Get("vm.pages.copied"))
}

func mustProc(sys vmapi.System, name string) *uvm.Process {
	p, err := sys.NewProcess(name)
	if err != nil {
		log.Fatal(err)
	}
	return p.(*uvm.Process)
}
