module uvm

go 1.24
