// Command uvmlint is the UVM static-analysis driver. It runs the four
// analyzers in internal/analysis (lockorder, completioncallback,
// simdet, counterhandle) in two modes:
//
//	uvmlint ./...                           standalone, loads packages itself
//	go vet -vettool=$(which uvmlint) ./...  unit-checker driven by cmd/go
//
// The vettool protocol is the one cmd/go speaks to golang.org/x/tools
// unitchecker binaries: -V=full prints a build identity, -flags prints
// a JSON flag description, and a *.cfg argument selects one package
// unit to analyse.
package main

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"

	"uvm/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			printVersion()
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			// No tool-specific flags.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return analysis.RunUnitchecker(args[0], os.Stderr)
		}
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: uvmlint <packages>  (or via go vet -vettool)")
		return 1
	}
	return runStandalone(args)
}

// printVersion emits the `<name> version devel buildID=<h>/<h>` line
// cmd/go parses to decide whether cached vet results are reusable. The
// hash of our own executable changes whenever the tool is rebuilt,
// which is exactly the invalidation cmd/go wants.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			h.Write(data)
		}
	}
	id := fmt.Sprintf("%x", h.Sum(nil))[:32]
	fmt.Printf("uvmlint version devel buildID=%s/%s\n", id, id)
}

// runStandalone loads the named packages (plus their in-module deps)
// and runs the suite over all of them in dependency order, so
// cross-package facts work exactly as in vet mode.
func runStandalone(patterns []string) int {
	res, err := analysis.LoadPackages(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uvmlint: %v\n", err)
		return 1
	}
	exit := 0
	for _, t := range res.Targets {
		diags, facts, err := analysis.RunSuite(t, analysis.Suite())
		if err != nil {
			fmt.Fprintf(os.Stderr, "uvmlint: %s: %v\n", t.Path, err)
			return 1
		}
		res.Facts[t.Path] = facts
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
			exit = 2
		}
	}
	return exit
}
