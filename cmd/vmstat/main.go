// Command vmstat boots a VM system, runs a named scenario, and dumps the
// system's statistics counters and map-entry census — useful for
// inspecting how the two systems behave structurally.
//
// Usage:
//
//	vmstat -sys uvm -scenario multiuser
//	vmstat -sys bsdvm -scenario x11
//	vmstat -sys uvm -scenario filesweep -profile nvme
//
// Scenarios: single, multiuser, x11, forkstorm, filesweep. Machine
// profiles: hdd97 (default, the paper's testbed), nvme, ramdisk — each
// with its own cost table and machine-size preset.
package main

import (
	"flag"
	"fmt"
	"os"

	"uvm/internal/bsdvm"
	"uvm/internal/param"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
	"uvm/internal/workload"
)

func main() {
	var (
		sysName  = flag.String("sys", "uvm", "vm system: uvm or bsdvm")
		scenario = flag.String("scenario", "multiuser", "single | multiuser | x11 | forkstorm | filesweep")
		profile  = flag.String("profile", "", "machine profile: hdd97 | nvme | ramdisk (default hdd97)")
	)
	flag.Parse()

	cfg, err := vmapi.ProfileConfig(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vmstat: %v\n", err)
		os.Exit(1)
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "vmstat: %v\n", err)
		os.Exit(1)
	}
	mach := vmapi.NewMachine(cfg)
	var sys vmapi.System
	switch *sysName {
	case "uvm":
		sys = uvm.Boot(mach)
	case "bsdvm":
		sys = bsdvm.Boot(mach)
	default:
		fmt.Fprintf(os.Stderr, "vmstat: unknown system %q\n", *sysName)
		os.Exit(1)
	}

	if err := run(sys, *scenario); err != nil {
		fmt.Fprintf(os.Stderr, "vmstat: %v\n", err)
		os.Exit(1)
	}
	// Stop the pagedaemon before reading the counters so the report is a
	// quiescent snapshot.
	sys.Shutdown()

	fmt.Printf("system: %s  scenario: %s\n", sys.Name(), *scenario)
	fmt.Printf("simulated time: %v\n", mach.Clock.Now())
	fmt.Printf("map entries: kernel=%d total=%d\n", sys.KernelMapEntries(), sys.TotalMapEntries())
	fmt.Printf("memory: total=%d free=%d active=%d inactive=%d pages\n",
		mach.Mem.TotalPages(), mach.Mem.FreePages(), mach.Mem.ActivePages(), mach.Mem.InactivePages())
	fmt.Printf("swap: %d/%d slots\n\n", mach.Swap.SlotsInUse(), mach.Swap.Slots())
	fmt.Print(mach.Stats.String())
}

func run(sys vmapi.System, scenario string) error {
	switch scenario {
	case "single":
		_, err := workload.SingleUserBoot(sys)
		return err
	case "multiuser":
		_, err := workload.MultiUserBoot(sys)
		return err
	case "x11":
		_, err := workload.StartX11(sys)
		return err
	case "forkstorm":
		p, err := sys.NewProcess("storm")
		if err != nil {
			return err
		}
		va, err := p.Mmap(0, 4<<20, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err != nil {
			return err
		}
		if err := p.TouchRange(va, 4<<20, true); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			child, err := p.Fork(fmt.Sprintf("c%d", i))
			if err != nil {
				return err
			}
			if err := child.TouchRange(va, 4<<20, true); err != nil {
				return err
			}
			child.Exit()
		}
		return nil
	case "filesweep":
		srv, err := workload.NewFileServer(sys, 200, 16)
		if err != nil {
			return err
		}
		defer srv.Close()
		if _, err := srv.ServeAll(); err != nil {
			return err
		}
		_, err = srv.ServeAll()
		return err
	default:
		return fmt.Errorf("unknown scenario %q", scenario)
	}
}
