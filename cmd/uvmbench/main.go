// Command uvmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	uvmbench                      run every experiment (full parameter sweeps)
//	uvmbench -quick               run every experiment with trimmed sweeps
//	uvmbench -e fig5              run a single experiment by id
//	uvmbench -list                list experiment ids
//	uvmbench -profile nvme        run on a named machine profile
//	uvmbench -matrix -out DIR     run the workload × profile matrix,
//	                              one report file per cell in DIR
//	uvmbench -traffic             run the multi-tenant traffic driver
//	                              (knobs: -tenants -dataset-pages -zipf
//	                              -churn -ops)
//
// Experiment ids: table1 table2 table3 fig2 fig5 fig6 datamove rc
// scaling pressure reclaimbw objwb traffic. Machine profiles: hdd97
// (default, the paper's testbed), nvme, ramdisk. Without -profile the
// traffic driver covers both hdd97 and nvme.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"uvm/internal/experiments"
	"uvm/internal/sim"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "trimmed parameter sweeps")
		exp      = flag.String("e", "", "run a single experiment by id")
		list     = flag.Bool("list", false, "list experiment ids")
		profile  = flag.String("profile", "", "machine profile: hdd97 | nvme | ramdisk (default hdd97)")
		matrix   = flag.Bool("matrix", false, "run the workload × profile matrix (with fault cells)")
		noFaults = flag.Bool("matrix-no-faults", false, "matrix: skip the fault-injected cells")
		out      = flag.String("out", "", "matrix: directory for per-cell report files")

		traffic = flag.Bool("traffic", false, "run the multi-tenant Zipf traffic driver")
		tenants = flag.Int("tenants", 0, "traffic: simulated tenant processes (0 = config default)")
		dataset = flag.Int("dataset-pages", 0, "traffic: corpus size in pages (0 = config default)")
		zipfS   = flag.Float64("zipf", -1, "traffic: Zipf popularity exponent (negative = config default)")
		churn   = flag.Int("churn", 0, "traffic: fork/exit churn period in requests (0 = config default)")
		ops     = flag.Int("ops", 0, "traffic: duration in requests per worker (0 = config default)")
	)
	flag.Parse()

	if err := experiments.SetProfile(*profile); err != nil {
		fmt.Fprintf(os.Stderr, "uvmbench: %v\n", err)
		os.Exit(1)
	}

	if *list {
		for _, r := range experiments.All(*quick) {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}
	if *matrix {
		if err := runMatrix(*out, !*noFaults, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "uvmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *traffic {
		over := experiments.TrafficOverrides{
			Tenants:      *tenants,
			DatasetPages: *dataset,
			ZipfS:        *zipfS,
			ChurnEvery:   *churn,
			OpsPerWorker: *ops,
		}
		if err := experiments.ReportTraffic(os.Stdout, *quick, over); err != nil {
			fmt.Fprintf(os.Stderr, "uvmbench: traffic: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *exp != "" {
		r, ok := experiments.Lookup(*exp, *quick)
		if !ok {
			fmt.Fprintf(os.Stderr, "uvmbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		if err := r.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "uvmbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		return
	}
	for _, r := range experiments.All(*quick) {
		if err := r.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "uvmbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
	}
}

// runMatrix runs every workload × profile cell, writing one report file
// per cell into out (if set) and the summary to stdout. Exits non-zero
// if any cell fails — including on a leaked Busy page.
func runMatrix(out string, withFaults, quick bool) error {
	var emit func(name, report string) error
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		emit = func(name, report string) error {
			return os.WriteFile(filepath.Join(out, "matrix-"+name+".txt"), []byte(report), 0o644)
		}
	}
	return experiments.ReportMatrix(os.Stdout, sim.Profiles(), withFaults, quick, emit)
}
