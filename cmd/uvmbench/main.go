// Command uvmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	uvmbench              run every experiment (full parameter sweeps)
//	uvmbench -quick       run every experiment with trimmed sweeps
//	uvmbench -e fig5      run a single experiment by id
//	uvmbench -list        list experiment ids
//
// Experiment ids: table1 table2 table3 fig2 fig5 fig6 datamove rc
// scaling pressure reclaimbw objwb.
package main

import (
	"flag"
	"fmt"
	"os"

	"uvm/internal/experiments"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "trimmed parameter sweeps")
		exp   = flag.String("e", "", "run a single experiment by id")
		list  = flag.Bool("list", false, "list experiment ids")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All(*quick) {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}
	if *exp != "" {
		r, ok := experiments.Lookup(*exp, *quick)
		if !ok {
			fmt.Fprintf(os.Stderr, "uvmbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(1)
		}
		if err := r.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "uvmbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
		return
	}
	for _, r := range experiments.All(*quick) {
		if err := r.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "uvmbench: %s: %v\n", r.ID, err)
			os.Exit(1)
		}
	}
}
