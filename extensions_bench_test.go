package bench

// Benchmarks for the paper's named extensions: vfork (§5.3 footnote 3),
// the hybrid amap implementation (§5.3), asynchronous pagein (§10), and
// the unified buffer cache (§10).

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"uvm/internal/param"
	"uvm/internal/phys"
	"uvm/internal/pmap"
	"uvm/internal/sim"
	"uvm/internal/uvm"
	"uvm/internal/vmapi"
)

// BenchmarkVforkVsFork shows footnote 3: vfork's cost is independent of
// the parent's resident set, fork's is linear in it.
func BenchmarkVforkVsFork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mach := benchMachine()
		sys := uvm.Boot(mach)
		p, _ := sys.NewProcess("parent")
		const pages = 2048 // 8 MB resident
		va, _ := p.Mmap(0, pages*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		if err := p.TouchRange(va, pages*param.PageSize, true); err != nil {
			b.Fatal(err)
		}

		t0 := mach.Clock.Now()
		vc, _ := p.Vfork("vc")
		vforkCost := mach.Clock.Since(t0)
		vc.Exit()

		t1 := mach.Clock.Now()
		fc, _ := p.Fork("fc")
		forkCost := mach.Clock.Since(t1)
		fc.Exit()

		if i == 0 {
			b.ReportMetric(float64(vforkCost.Nanoseconds()), "sim-ns-vfork-8MB")
			b.ReportMetric(float64(forkCost.Nanoseconds()), "sim-ns-fork-8MB")
		}
	}
}

// BenchmarkAblationAsyncPagein measures the §10 future-work feature: a
// cold sequential file sweep with and without overlapped pagein.
func BenchmarkAblationAsyncPagein(b *testing.B) {
	run := func(async bool) (time.Duration, int64) {
		mach := benchMachine()
		cfg := uvm.DefaultConfig()
		cfg.AsyncPagein = async
		sys := uvm.BootConfig(mach, cfg)
		mach.FS.Create("/sweep.bin", 256*param.PageSize, nil)
		vn, _ := mach.FS.Open("/sweep.bin")
		defer vn.Unref()
		p, _ := sys.NewProcess("reader")
		va, _ := p.Mmap(0, 256*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		t0 := mach.Clock.Now()
		if err := p.TouchRange(va, 256*param.PageSize, false); err != nil {
			b.Fatal(err)
		}
		return mach.Clock.Since(t0), mach.Stats.Get(sim.CtrFaults)
	}
	for i := 0; i < b.N; i++ {
		syncTime, _ := run(false)
		asyncTime, _ := run(true)
		if i == 0 {
			b.ReportMetric(syncTime.Seconds()*1e3, "sim-ms-sync")
			b.ReportMetric(asyncTime.Seconds()*1e3, "sim-ms-async")
		}
	}
}

// BenchmarkAblationHybridAmap compares first-fault cost on a large sparse
// mapping under the array and hybrid amap implementations (§5.3).
func BenchmarkAblationHybridAmap(b *testing.B) {
	run := func(kind uvm.AmapImplKind) time.Duration {
		mach := benchMachine()
		cfg := uvm.DefaultConfig()
		cfg.AmapImpl = kind
		sys := uvm.BootConfig(mach, cfg)
		p, _ := sys.NewProcess("sparse")
		// 64 MB sparse mapping, three pages touched.
		va, _ := p.Mmap(0, 16384*param.PageSize, param.ProtRW, vmapi.MapAnon|vmapi.MapPrivate, nil, 0)
		t0 := mach.Clock.Now()
		p.Access(va, true)
		p.Access(va+8000*param.PageSize, true)
		p.Access(va+16383*param.PageSize, true)
		return mach.Clock.Since(t0)
	}
	for i := 0; i < b.N; i++ {
		arr := run(uvm.AmapArray)
		hyb := run(uvm.AmapHybrid)
		if i == 0 {
			b.ReportMetric(float64(arr.Nanoseconds()), "sim-ns-array")
			b.ReportMetric(float64(hyb.Nanoseconds()), "sim-ns-hybrid")
		}
	}
}

// BenchmarkPVContention measures the sharded pmap reverse map against
// the single-mutex layout it replaced: GOMAXPROCS workers, each with its
// own pmap (its own simulated address space, as in parallel faults
// across processes), hammer Enter with rotating pages, so every
// operation removes one pv entry and adds another. With one bucket all
// workers serialise on one mutex; with 64 the bucket locks spread by
// frame number and the contended share collapses. The pv-contended-%
// metric reports it per configuration. Set UVM_PV_SHARDS to benchmark a
// specific shard count instead of the default pair.
func BenchmarkPVContention(b *testing.B) {
	configs := []struct {
		name   string
		shards int
	}{{"single-mutex", 1}, {"sharded-64", 64}}
	if env := os.Getenv("UVM_PV_SHARDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			b.Fatalf("UVM_PV_SHARDS=%q: %v", env, err)
		}
		configs = configs[:0]
		configs = append(configs, struct {
			name   string
			shards int
		}{fmt.Sprintf("env-%d", n), n})
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			const workerPages = 128
			clock := sim.NewClock()
			costs := sim.DefaultCosts()
			stats := sim.NewStats()
			// RAM sized from the worker count RunParallel will spawn, so
			// many-core hosts do not run the free list dry.
			mem := phys.NewMem(clock, costs, stats, runtime.GOMAXPROCS(0)*workerPages+1024)
			mmu := pmap.NewMMU(clock, costs, stats)
			mmu.SetPVShards(cfg.shards)

			var workerID atomic.Int32
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := workerID.Add(1)
				pm := mmu.NewPmap(fmt.Sprintf("w%d", id))
				pages := make([]*phys.Page, workerPages)
				for i := range pages {
					pg, err := mem.Alloc(nil, 0, false)
					if err != nil {
						b.Error(err)
						return
					}
					pages[i] = pg
				}
				base := param.MmapHintBase + param.VAddr(id)<<26
				i := 0
				for pb.Next() {
					// Same VA, different page each time: every Enter is a
					// replacement — one pv removal, one pv insertion.
					pm.Enter(base+param.VAddr(i%8)*param.PageSize,
						pages[i%workerPages], param.ProtRW, false)
					i++
				}
				pm.RemoveAll()
			})
			b.StopTimer()
			if acq := stats.Get(sim.CtrPVAcquires); acq > 0 {
				b.ReportMetric(100*float64(stats.Get(sim.CtrPVContended))/float64(acq), "pv-contended-%")
			}
		})
	}
}

// BenchmarkAllocContention measures the per-CPU free-page caches against
// the single global pool they front: GOMAXPROCS workers hammer the
// allocator, each holding a small working set of frames that it
// allocates and frees in bursts. With AllocCaches=0 every operation
// takes a global queue-shard lock; with one magazine per worker almost
// every operation takes only the worker's own magazine lock, refilling
// and draining in batches. The alloc-contended-% metric reports the
// contended share of allocation-path lock acquisitions per layout. Set
// UVM_ALLOC_CACHES to benchmark a specific magazine count instead of the
// default pair.
func BenchmarkAllocContention(b *testing.B) {
	configs := []struct {
		name   string
		caches int
	}{{"single-pool", 0}, {fmt.Sprintf("cached-%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)}}
	if env := os.Getenv("UVM_ALLOC_CACHES"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil {
			b.Fatalf("UVM_ALLOC_CACHES=%q: %v", env, err)
		}
		configs = configs[:0]
		configs = append(configs, struct {
			name   string
			caches int
		}{fmt.Sprintf("env-%d", n), n})
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			const heldMax = 32
			clock := sim.NewClock()
			costs := sim.DefaultCosts()
			stats := sim.NewStats()
			// RAM sized from the worker count RunParallel will spawn, so
			// many-core hosts never run the pool dry mid-measurement.
			mem := phys.NewMem(clock, costs, stats, runtime.GOMAXPROCS(0)*2*heldMax+1024)
			if cfg.caches > 0 {
				mem.SetAllocCaches(cfg.caches, 0)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var held []*phys.Page
				for pb.Next() {
					if len(held) < heldMax {
						pg, err := mem.Alloc(nil, 0, false)
						if err != nil {
							b.Error(err)
							return
						}
						held = append(held, pg)
						continue
					}
					for _, pg := range held {
						mem.Free(pg)
					}
					held = held[:0]
				}
				for _, pg := range held {
					mem.Free(pg)
				}
			})
			b.StopTimer()
			if acq := stats.Get(sim.CtrAllocAcquires); acq > 0 {
				b.ReportMetric(100*float64(stats.Get(sim.CtrAllocContended))/float64(acq), "alloc-contended-%")
			}
		})
	}
}

// BenchmarkUBCReadVsMmap compares the two coherent paths to the same
// cached file data.
func BenchmarkUBCReadVsMmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mach := benchMachine()
		sys := uvm.Boot(mach).(*uvm.System)
		mach.FS.Create("/ubc.bin", 64*param.PageSize, nil)
		vn, _ := mach.FS.Open("/ubc.bin")
		p, _ := sys.NewProcess("reader")

		// Warm through read(2).
		buf := make([]byte, 64*param.PageSize)
		t0 := mach.Clock.Now()
		if _, err := sys.FileRead(vn, 0, buf); err != nil {
			b.Fatal(err)
		}
		readCost := mach.Clock.Since(t0)

		// Mapping the warm file is nearly free.
		t1 := mach.Clock.Now()
		va, _ := p.Mmap(0, 64*param.PageSize, param.ProtRead, vmapi.MapShared, vn, 0)
		if err := p.TouchRange(va, 64*param.PageSize, false); err != nil {
			b.Fatal(err)
		}
		mmapCost := mach.Clock.Since(t1)
		vn.Unref()
		if i == 0 {
			b.ReportMetric(float64(readCost.Microseconds()), "sim-us-read2-cold")
			b.ReportMetric(float64(mmapCost.Microseconds()), "sim-us-mmap-warm")
		}
	}
}
