#!/usr/bin/env bash
# check-docs.sh — documentation gate, run by the CI docs job and locally.
#
# Fails on:
#   1. broken relative links in any *.md file (http(s)/mailto links and
#      pure #anchors are not checked);
#   2. Go packages without a package comment ("// Package ..." for
#      libraries, "// Command ..." for main packages);
#   3. undocumented exported identifiers (top-level funcs, methods,
#      types, vars and consts without a doc comment) in internal/swap,
#      internal/uvm, internal/pmap, internal/phys, internal/disk,
#      internal/vfs, internal/workload, internal/experiments,
#      internal/histogram, internal/control and internal/analysis — the
#      subsystems whose documentation this repo commits to keeping
#      current. Members of grouped const/var blocks are outside the
#      check's scope.
#   4. drift between the lock hierarchy declared in
#      internal/analysis/levels.go and the level table documented in
#      docs/analysis.md (names and order must match exactly).
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

# --- 1. relative links in markdown ---------------------------------------
while IFS= read -r md; do
  dir=$(dirname "$md")
  # Extract (target) parts of [text](target) links.
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target=${target%%#*}         # strip in-file anchors
    target=${target%% *}         # strip optional link titles
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "broken link in $md: $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(find . -name '*.md' -not -path './.git/*')

# --- 2. package comments --------------------------------------------------
for dir in $(go list -f '{{.Dir}}' ./...); do
  if ! grep -qE '^// (Package|Command) ' "$dir"/*.go; then
    echo "package $dir lacks a package comment (// Package ... or // Command ...)"
    fail=1
  fi
done

# --- 3. exported identifiers in the documented subsystems ----------------
for f in internal/swap/*.go internal/uvm/*.go internal/pmap/*.go \
         internal/phys/*.go internal/disk/*.go internal/vfs/*.go \
         internal/workload/*.go internal/experiments/*.go \
         internal/histogram/*.go internal/control/*.go \
         internal/analysis/*.go; do
  case "$f" in *_test.go) continue ;; esac
  if ! awk -v file="$f" '
    /^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
      if (prev !~ /^\/\//) {
        printf "undocumented exported identifier in %s:%d: %s\n", file, NR, $0
        bad = 1
      }
    }
    { prev = $0 }
    END { exit bad }
  ' "$f"; then
    fail=1
  fi
done

# --- 4. lock levels: levels.go vs docs/analysis.md ------------------------
code_levels=$(awk '/^var Levels = \[\]string\{/,/^\}/' internal/analysis/levels.go \
  | grep -oE '"[a-z]+"' | tr -d '"')
doc_levels=$(grep -oE '^\| `[a-z]+` \|' docs/analysis.md \
  | sed -E 's/^\| `([a-z]+)` \|/\1/')
if ! diff <(echo "$code_levels") <(echo "$doc_levels") >/dev/null; then
  echo "lock level drift between internal/analysis/levels.go and docs/analysis.md:"
  diff <(echo "$code_levels") <(echo "$doc_levels") | sed 's/^/  /' || true
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "check-docs: FAILED"
  exit 1
fi
echo "check-docs: OK"
